#include "bisim/definability.hpp"

#include <gtest/gtest.h>

#include "core/classification.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/random_formula.hpp"
#include "port/port_numbering.hpp"

namespace wm {
namespace {

KripkeModel model_of(const Graph& g, Variant variant) {
  return kripke_from_graph(PortNumbering::identity(g), variant);
}

TEST(Definability, DepthZeroIsBooleanClosureOfAtoms) {
  // Path P3 in K--: atoms q1 (endpoints) and q2 (middle) partition into
  // 2 blocks; 4 definable sets at depth 0.
  const KripkeModel k = model_of(path_graph(3), Variant::MinusMinus);
  const auto sets = definable_sets(k, 0, false);
  EXPECT_EQ(sets.size(), 4u);
  EXPECT_TRUE(sets.contains(std::vector<bool>{true, false, true}));   // q1
  EXPECT_TRUE(sets.contains(std::vector<bool>{false, true, false}));  // q2
}

TEST(Definability, FixpointFamilyGrowsWithDepth) {
  const KripkeModel k = model_of(path_graph(5), Variant::MinusMinus);
  const auto d0 = definable_sets(k, 0, false);
  const auto d1 = definable_sets(k, 1, false);
  const auto dfix = definable_sets(k, -1, false);
  EXPECT_LE(d0.size(), d1.size());
  EXPECT_LE(d1.size(), dfix.size());
  // P5 folds into 3 ungraded blocks ({ends}, {1,3}, {2}): 2^3 = 8
  // definable sets at the fixpoint.
  EXPECT_EQ(dfix.size(), 8u);
}

struct DefCase {
  Variant variant;
  bool graded;
};

class ExpressiveCompleteness : public ::testing::TestWithParam<DefCase> {};

// The Section 4 backbone: a set is definable at depth t iff it is a
// union of t-step (g-)bisimilarity blocks — for every t up to the
// fixpoint, on random graphs, in every Kripke view.
TEST_P(ExpressiveCompleteness, DefinableEqualsBlockUnions) {
  const DefCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.variant) * 2 + c.graded + 10);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_graph(6, 3, 2, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const KripkeModel k = kripke_from_graph(p, c.variant);
    for (int t = 0; t <= 3; ++t) {
      const auto sets = definable_sets(k, t, c.graded);
      const Partition part = c.graded ? coarsest_graded_bisimulation(k, t)
                                      : coarsest_bisimulation(k, t);
      const auto unions = unions_of_blocks(part, k.num_states());
      EXPECT_EQ(sets, unions) << variant_name(c.variant) << " graded="
                              << c.graded << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Views, ExpressiveCompleteness,
    ::testing::Values(DefCase{Variant::MinusMinus, false},
                      DefCase{Variant::MinusMinus, true},
                      DefCase{Variant::MinusPlus, false},
                      DefCase{Variant::MinusPlus, true},
                      DefCase{Variant::PlusMinus, false},
                      DefCase{Variant::PlusPlus, false}));

TEST(Definability, GradedStrictlyMoreExpressiveOnTheThm13Witness) {
  // On the Theorem 13 witness, GML defines sets ML cannot (the odd-odd
  // solution set among them).
  const SeparationWitness w = thm13_witness();
  const KripkeModel k = kripke_from_graph(w.numbering, Variant::MinusMinus);
  const auto ml = definable_sets(k, -1, false);
  const auto gml = definable_sets(k, -1, true);
  EXPECT_LT(ml.size(), gml.size());
  // The odd-odd solution is GML-definable but not ML-definable.
  std::vector<bool> solution(10);
  for (int v = 0; v < 10; ++v) {
    int odd = 0;
    for (NodeId u : w.graph.neighbours(v)) {
      if (w.graph.degree(u) % 2 == 1) ++odd;
    }
    solution[v] = odd % 2 == 1;
  }
  EXPECT_FALSE(ml.contains(solution));
  EXPECT_TRUE(gml.contains(solution));
}

TEST(Definability, EveryRandomFormulaIsInTheFamily) {
  // Soundness direction, sampled: any depth-<=t formula's truth vector
  // lies in definable_sets(k, t).
  Rng rng(42);
  const Graph g = random_connected_graph(6, 3, 2, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);
  const auto sets = definable_sets(k, 2, true);
  RandomFormulaOptions opts;
  opts.variant = Variant::MinusMinus;
  opts.delta = g.max_degree();
  opts.num_props = g.max_degree();
  opts.graded = true;
  opts.max_depth = 2;
  for (int i = 0; i < 100; ++i) {
    const Formula f = random_formula(rng, opts);
    EXPECT_TRUE(sets.contains(model_check(k, f))) << f.to_string();
  }
}

TEST(Definability, BudgetGuard) {
  const KripkeModel k = model_of(petersen_graph(), Variant::PlusPlus);
  EXPECT_THROW(definable_sets(k, -1, false, 8), DefinabilityBudgetError);
}

TEST(Definability, UnionsOfBlocksGuard) {
  Partition p;
  p.num_blocks = 40;
  EXPECT_THROW(unions_of_blocks(p, 40), DefinabilityBudgetError);
}

}  // namespace
}  // namespace wm
