// Determinism tests for the pooled canonical paths: the parallel
// modulo-isomorphism enumeration and the canonical-keyed quotient search
// must be byte-identical to their sequential counterparts at every
// thread count (the lowest-witness contract of util/parallel.hpp).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bisim/quotient.hpp"
#include "graph/canonical.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "logic/kripke.hpp"
#include "port/port_numbering.hpp"
#include "support/canon_harness.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

std::vector<std::string> sequential_iso_certs(int n, const EnumerateOptions& opts) {
  std::vector<std::string> certs;
  enumerate_graphs_modulo_iso(n, opts, [&](const Graph& g) {
    certs.push_back(canonical_certificate(g));
    return true;
  });
  return certs;
}

std::vector<std::string> parallel_iso_certs(int n, const EnumerateOptions& opts,
                                            int threads) {
  ThreadPool pool(threads);
  std::vector<std::string> certs;
  enumerate_graphs_modulo_iso_parallel(n, opts, pool, [&](const Graph& g) {
    certs.push_back(canonical_certificate(g));
    return true;
  });
  return certs;
}

TEST(CanonicalParallel, ModuloIsoEnumerationMatchesSequential) {
  for (const bool connected : {false, true}) {
    EnumerateOptions opts;
    opts.connected_only = connected;
    for (int n = 1; n <= 5; ++n) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " connected=" + std::to_string(connected));
      const auto seq = sequential_iso_certs(n, opts);
      for (const int threads : {2, 8}) {
        EXPECT_EQ(seq, parallel_iso_certs(n, opts, threads))
            << "threads=" << threads;
      }
    }
  }
}

TEST(CanonicalParallel, ModuloIsoRepresentativesAreLowestMask) {
  // The parallel variant must replay the same graphs (not merely
  // equally many): compare adjacency, not just certificates.
  EnumerateOptions opts;
  opts.connected_only = false;
  std::vector<Graph> seq;
  enumerate_graphs_modulo_iso(5, opts, [&](const Graph& g) {
    seq.push_back(g);
    return true;
  });
  ThreadPool pool(4);
  std::size_t i = 0;
  enumerate_graphs_modulo_iso_parallel(5, opts, pool, [&](const Graph& g) {
    EXPECT_LT(i, seq.size());
    if (i < seq.size()) {
      EXPECT_EQ(seq[i], g);
    }
    ++i;
    return true;
  });
  EXPECT_EQ(i, seq.size());
}

TEST(CanonicalParallel, QuotientSearchPooledMatchesSequential) {
  // The pool drives minimisation AND canonicalisation per candidate; the
  // sharded min-table makes the representative set thread-agnostic.
  for (const std::uint64_t seed : canontest::seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto build = [seed](std::uint64_t i) {
      Rng rng(seed * 1315423911ULL + i);
      return canontest::random_kripke_model(rng);
    };
    const QuotientSearchResult serial =
        search_distinct_quotients(40, build, /*graded=*/false, nullptr);
    for (const int threads : {2, 8}) {
      ThreadPool pool(threads);
      const QuotientSearchResult par =
          search_distinct_quotients(40, build, /*graded=*/false, &pool);
      ASSERT_EQ(serial.representatives, par.representatives)
          << "threads=" << threads;
      ASSERT_EQ(serial.models.size(), par.models.size());
      for (std::size_t j = 0; j < serial.models.size(); ++j) {
        EXPECT_EQ(model_fingerprint(serial.models[j]),
                  model_fingerprint(par.models[j]));
      }
    }
  }
}

}  // namespace
}  // namespace wm
