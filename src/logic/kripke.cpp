#include "logic/kripke.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/counters.hpp"

namespace wm {

KripkeModel::KripkeModel(int num_states, int num_props)
    : num_states_(num_states), num_props_(num_props) {
  valuation_.assign(static_cast<std::size_t>(num_props),
                    Bitset(static_cast<std::size_t>(num_states)));
}

void KripkeModel::add_edge(const Modality& alpha, int from, int to) {
  ensure_relation(alpha);
  auto& succ = rel_[alpha][from];
  succ.insert(std::upper_bound(succ.begin(), succ.end(), to), to);
}

void KripkeModel::ensure_relation(const Modality& alpha) {
  auto it = rel_.find(alpha);
  if (it == rel_.end()) {
    rel_[alpha].assign(static_cast<std::size_t>(num_states_), {});
  }
}

void KripkeModel::set_prop(int q, int state, bool value) {
  if (q < 1 || q > num_props_) throw std::out_of_range("set_prop: bad q");
  valuation_[q - 1].set(static_cast<std::size_t>(state), value);
}

const std::vector<int>& KripkeModel::successors(const Modality& alpha,
                                                int state) const {
  static const std::vector<int> empty;
  auto it = rel_.find(alpha);
  if (it == rel_.end()) return empty;
  return it->second[state];
}

const std::vector<std::vector<int>>* KripkeModel::relation(
    const Modality& alpha) const {
  auto it = rel_.find(alpha);
  return it == rel_.end() ? nullptr : &it->second;
}

std::vector<Modality> KripkeModel::modalities() const {
  std::vector<Modality> out;
  out.reserve(rel_.size());
  for (const auto& [alpha, _] : rel_) out.push_back(alpha);
  return out;
}

KripkeModel KripkeModel::disjoint_union(const KripkeModel& a,
                                        const KripkeModel& b) {
  KripkeModel u(a.num_states() + b.num_states(),
                std::max(a.num_props(), b.num_props()));
  for (const Modality& alpha : a.modalities()) {
    u.ensure_relation(alpha);
    for (int v = 0; v < a.num_states(); ++v) {
      for (int w : a.successors(alpha, v)) u.add_edge(alpha, v, w);
    }
  }
  for (const Modality& alpha : b.modalities()) {
    u.ensure_relation(alpha);
    for (int v = 0; v < b.num_states(); ++v) {
      for (int w : b.successors(alpha, v)) {
        u.add_edge(alpha, a.num_states() + v, a.num_states() + w);
      }
    }
  }
  for (int q = 1; q <= a.num_props(); ++q) {
    for (int v = 0; v < a.num_states(); ++v) {
      if (a.prop_holds(q, v)) u.set_prop(q, v);
    }
  }
  for (int q = 1; q <= b.num_props(); ++q) {
    for (int v = 0; v < b.num_states(); ++v) {
      if (b.prop_holds(q, v)) u.set_prop(q, a.num_states() + v);
    }
  }
  return u;
}

std::string KripkeModel::to_string() const {
  std::ostringstream os;
  os << "Kripke(|W|=" << num_states_ << ", props=" << num_props_ << ")";
  for (const auto& [alpha, succ] : rel_) {
    os << "\n  R" << alpha.to_string() << ":";
    for (int v = 0; v < num_states_; ++v) {
      for (int w : succ[v]) os << " (" << v << "->" << w << ")";
    }
  }
  return os.str();
}

KripkeModel kripke_from_graph(const PortNumbering& p, Variant variant,
                              int delta) {
  WM_COUNT(kripke.models);
  const Graph& g = p.graph();
  if (delta < 0) delta = g.max_degree();
  if (delta < g.max_degree()) {
    throw std::invalid_argument("kripke_from_graph: delta below max degree");
  }
  KripkeModel k(g.num_nodes(), delta);
  // Register the full signature so bisimulation sees empty relations too.
  switch (variant) {
    case Variant::PlusPlus:
      for (int i = 1; i <= delta; ++i) {
        for (int j = 1; j <= delta; ++j) k.ensure_relation({i, j});
      }
      break;
    case Variant::MinusPlus:
      for (int j = 1; j <= delta; ++j) k.ensure_relation({0, j});
      break;
    case Variant::PlusMinus:
      for (int i = 1; i <= delta; ++i) k.ensure_relation({i, 0});
      break;
    case Variant::MinusMinus:
      k.ensure_relation({0, 0});
      break;
  }
  // R_(i,j) = {(u,v) : p((v,j)) = (u,i)}: v sends through out-port j and
  // the message lands in u's in-port i; u's modal successors are the
  // nodes whose messages it can hear.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int j = 1; j <= g.degree(v); ++j) {
      const PortRef dst = p.forward({v, j});
      const NodeId u = dst.node;
      const int i = dst.index;
      switch (variant) {
        case Variant::PlusPlus:
          k.add_edge({i, j}, u, v);
          break;
        case Variant::MinusPlus:
          k.add_edge({0, j}, u, v);
          break;
        case Variant::PlusMinus:
          k.add_edge({i, 0}, u, v);
          break;
        case Variant::MinusMinus:
          k.add_edge({0, 0}, u, v);
          break;
      }
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 1) k.set_prop(g.degree(v), v);
  }
  return k;
}

}  // namespace wm
