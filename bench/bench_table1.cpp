// Regenerates Tables 1 and 2: the prior-work terminology mapped onto
// this library's classes, with the beeping row (Afek et al. /
// Cornejo–Kuhn ≈ SB) backed by a measured simulation: an SB machine run
// natively vs through the single-bit beeping transformation.
// Ported to the task-parallel substrate: the measured rows execute
// concurrently across --threads N workers (instances pre-generated
// sequentially from the seeded Rng; rows buffered and printed in order,
// so stdout is byte-identical at any thread count). Perf goes to stderr
// and BENCH_table1.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/beeping.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

LambdaMachine parity_diversity_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int d) {
    return Value::pair(Value::str("p"), Value::integer(d % 2));
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    return Value::integer(inbox.contains(Value::integer(0)) &&
                                  inbox.contains(Value::integer(1))
                              ? 1
                              : 0);
  };
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  std::printf("=== Table 1: prior-work terminology vs this classification "
              "===\n\n");
  std::printf("  %-22s %-34s\n", "class here", "terms in prior work");
  std::printf("  %-22s %-34s\n", "Vector / VVc",
              "port numbering; local edge labelling; local orientation;");
  std::printf("  %-22s %-34s\n", "",
              "complete port awareness; port-to-port");
  std::printf("  %-22s %-34s\n", "Vector / VV", "input/output port awareness");
  std::printf("  %-22s %-34s\n", "Multiset / MV",
              "output port awareness; wireless in input; mailbox;");
  std::printf("  %-22s %-34s\n", "", "port-to-mailbox");
  std::printf("  %-22s %-34s\n", "Set / SV", "(new in the paper)");
  std::printf("  %-22s %-34s\n", "Broadcast / VB",
              "input port awareness; wireless in output; broadcast-to-port");
  std::printf("  %-22s %-34s\n", "Multiset∩Broadcast / MB",
              "totalistic; wireless; broadcast-to-mailbox;");
  std::printf("  %-22s %-34s\n", "", "mailbox-to-mailbox; network w/o colours");
  std::printf("  %-22s %-34s\n", "Set∩Broadcast / SB", "beeping");

  std::printf("\n=== The beeping row, measured ===\n");
  std::printf("An SB machine (alphabet {0,1}) run natively vs through the\n");
  std::printf("single-bit beeping simulation (1 source round -> |M| beep "
              "slots):\n\n");
  std::printf("%-16s %-8s %-12s %-14s %-12s %-12s\n", "graph", "agree",
              "rounds(SB)", "rounds(beep)", "maxmsg(SB)", "maxmsg(beep)");
  auto sb = std::make_shared<LambdaMachine>(parity_diversity_machine());
  const auto beeping =
      to_beeping_machine(sb, {Value::integer(0), Value::integer(1)});
  Rng rng(11);
  const std::vector<std::string> names = {"cycle-9", "star-6", "petersen",
                                          "grid-3x4", "random-10"};
  // Instances from the seeded Rng in fixed order; executions fan out with
  // one ExecutionContext per worker, rows printed in order.
  std::vector<PortNumbering> instances;
  for (const std::string& name : names) {
    Graph g;
    if (name == "cycle-9") g = cycle_graph(9);
    else if (name == "star-6") g = star_graph(6);
    else if (name == "petersen") g = petersen_graph();
    else if (name == "grid-3x4") g = grid_graph(3, 4);
    else g = random_connected_graph(10, 4, 5, rng);
    instances.push_back(PortNumbering::random(g, rng));
  }
  const benchutil::Timer t_rows;
  std::vector<std::string> rows(names.size());
  std::vector<ExecutionContext> ctxs(
      static_cast<std::size_t>(pool.num_threads()));
  pool.parallel_chunks(
      0, names.size(),
      [&](std::uint64_t lo, std::uint64_t hi, int worker) {
        ExecutionContext& ctx = ctxs[static_cast<std::size_t>(worker)];
        for (std::uint64_t i = lo; i < hi; ++i) {
          WM_TIME_SCOPE("bench.table1.row");
          const auto ra = execute(*sb, instances[i], ctx);
          const auto rb = execute(*beeping, instances[i], ctx);
          char buf[160];
          std::snprintf(buf, sizeof buf, "%-16s %-8s %-12d %-14d %-12zu %-12zu\n",
                        names[i].c_str(),
                        ra.final_states == rb.final_states ? "yes" : "NO",
                        ra.rounds, rb.rounds, ra.stats.max_size,
                        rb.stats.max_size);
          rows[i] = buf;
        }
      },
      1);
  const double rows_ms = t_rows.ms();
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
  benchutil::report_phase("beeping row executions", rows_ms,
                          names.size() * 2);
  std::printf("\nShape check: outputs identical; beeping rounds = |M| x SB\n");
  std::printf("rounds; beeping messages are a single bit.\n");

  std::printf("\n=== Table 2 (summary): how this build differs from prior "
              "work ===\n");
  std::printf(" - no global knowledge: collapses proven with constant\n");
  std::printf("   simulation overhead (bench_thm4/thm8), not |V|-dependent;\n");
  std::printf(" - graph problems, not input-output functions;\n");
  std::printf(" - class-vs-class separations, not individual problems;\n");
  std::printf(" - deterministic synchronous model throughout.\n");

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "table1", static_cast<long long>(names.size()), pool.num_threads(),
      wall,
      rows_ms > 0 ? 1000.0 * static_cast<double>(names.size() * 2) / rows_ms
                  : 0);
  return 0;
}
