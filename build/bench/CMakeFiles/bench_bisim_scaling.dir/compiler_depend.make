# Empty compiler generated dependencies file for bench_bisim_scaling.
# This may be replaced when dependencies are built.
