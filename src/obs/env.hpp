// One call to arm every environment-driven observability hook.
//
// Historically benchutil::parse_threads armed WM_TRACE, which meant the
// examples/ binaries silently ignored it. Binaries now call
// obs::init_from_env() first thing in main (parse_threads still does it
// for the benches), which arms:
//
//   WM_TRACE=<file>     Chrome trace_event phase tracing, atexit flush
//   WM_PROGRESS=<secs>  heartbeat thread for long searches, atexit stop
//   WM_LOG=<file>       structured JSON-lines logging (obs/log.hpp),
//                       with WM_LOG_LEVEL / WM_LOG_RATE / WM_SLOW_MS
//
// and records the process start wallclock for the run manifest.
// Idempotent and cheap (a few getenv calls); safe with -DWM_OBS=OFF
// (tracing/progress arming become no-ops, the manifest clock remains).
#pragma once

namespace wm::obs {

void init_from_env();

}  // namespace wm::obs
