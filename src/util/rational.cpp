#include "util/rational.hpp"

namespace wm {

namespace {

std::int64_t checked(__int128 v) {
  if (v > INT64_MAX || v < INT64_MIN) {
    throw std::overflow_error("Rational: 64-bit overflow");
  }
  return static_cast<std::int64_t>(v);
}

}  // namespace

Rational::Rational(std::int64_t n, std::int64_t d) : num_(n), den_(d) {
  if (d == 0) throw std::domain_error("Rational: zero denominator");
  normalise();
}

void Rational::normalise() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Rational Rational::operator+(const Rational& o) const {
  const __int128 n =
      static_cast<__int128>(num_) * o.den_ + static_cast<__int128>(o.num_) * den_;
  const __int128 d = static_cast<__int128>(den_) * o.den_;
  // Reduce in 128 bits before narrowing so intermediate blowup is harmless.
  __int128 a = n < 0 ? -n : n, b = d;
  while (b) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  if (a == 0) a = 1;
  return Rational(checked(n / a), checked(d / a));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  const std::int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, o.den_);
  const std::int64_t g2 = std::gcd(o.num_ < 0 ? -o.num_ : o.num_, den_);
  const __int128 n = static_cast<__int128>(num_ / g1) * (o.num_ / g2);
  const __int128 d = static_cast<__int128>(den_ / g2) * (o.den_ / g1);
  return Rational(checked(n), checked(d));
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw std::domain_error("Rational: division by zero");
  return *this * Rational(o.den_, o.num_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  const __int128 lhs = static_cast<__int128>(a.num_) * b.den_;
  const __int128 rhs = static_cast<__int128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Rational Rational::floor_to_pow2() const {
  if (num_ <= 0 || *this > Rational(1)) {
    throw std::domain_error("floor_to_pow2 requires 0 < x <= 1");
  }
  Rational p(1);
  const Rational half(1, 2);
  while (p > *this) p *= half;
  return p;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace wm
