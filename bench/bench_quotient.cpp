// Minimisation report: how far do the four Kripke views of classic
// graphs compress under bisimulation quotienting? The block counts ARE
// the per-class distinguishable-state counts — the quantity every
// separation and every locality bound in this library reduces to.
//
// Ported to the task-parallel substrate: the per-graph rows minimise in
// parallel into order-preserving slots, and the distinct-quotient search
// (the Lemma 14/15 question "how many genuinely different minimal views
// does a family of numberings admit?") runs on the lock-free
// visitor-core dedup scan of search_distinct_quotients. stdout is
// byte-identical at any --threads setting; perf goes to stderr and
// BENCH_quotient.json.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "bisim/quotient.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

std::string row(const std::string& name, const PortNumbering& p) {
  WM_TIME_SCOPE("bench.quotient.row");
  const Graph& g = p.graph();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%-26s %-4d", name.c_str(), g.num_nodes());
  std::string out = buf;
  for (const Variant variant : {Variant::PlusPlus, Variant::MinusPlus,
                                Variant::PlusMinus, Variant::MinusMinus}) {
    const KripkeModel k = kripke_from_graph(p, variant);
    const KripkeModel q = minimise(k);
    const KripkeModel qg = minimise_graded(k);
    std::snprintf(buf, sizeof buf, "   %3d/%-3d", q.num_states(),
                  qg.num_states());
    out += buf;
  }
  out += '\n';
  return out;
}

std::size_t g_scanned = 0;
double g_search_ms = 0;

/// The distinct-quotient search over ALL consistent port numberings of a
/// graph: for each Kripke view, how many non-isomorphic minimal models
/// does the family produce? (1 everywhere = the graph's local views are
/// numbering-independent; more = the numbering leaks information.)
void quotient_search(const char* name, const Graph& g, ThreadPool& pool) {
  WM_TIME_SCOPE("bench.quotient.search");
  std::vector<PortNumbering> numberings;
  for_each_consistent_port_numbering(g, [&](const PortNumbering& p) {
    numberings.push_back(p);
    return true;
  });
  const benchutil::Timer timer;
  std::printf("%-26s %-12zu", name, numberings.size());
  for (const Variant variant : {Variant::PlusPlus, Variant::MinusPlus,
                                Variant::PlusMinus, Variant::MinusMinus}) {
    const QuotientSearchResult r = search_distinct_quotients(
        numberings.size(),
        [&](std::uint64_t i) {
          return kripke_from_graph(numberings[i], variant);
        },
        /*graded=*/false, &pool);
    std::printf("   %5zu", r.representatives.size());
    g_scanned += numberings.size();
  }
  std::printf("\n");
  g_search_ms += timer.ms();
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  std::printf("=== Bisimulation quotients (minimal models) ===\n\n");
  std::printf("columns: states of K/~ (ungraded / graded) per view\n\n");
  std::printf("%-26s %-4s   %-7s   %-7s   %-7s   %-7s\n",
              "graph (numbering)", "n", "K++", "K-+", "K+-", "K--");
  // The numberings draw from shared Rngs, so build them sequentially;
  // the minimisation work parallelises over rows.
  Rng rng(3);
  std::vector<std::pair<std::string, PortNumbering>> table;
  table.emplace_back("path-8 (identity)",
                     PortNumbering::identity(path_graph(8)));
  table.emplace_back("cycle-8 (identity)",
                     PortNumbering::identity(cycle_graph(8)));
  table.emplace_back("cycle-8 (symmetric)",
                     PortNumbering::symmetric_regular(cycle_graph(8)));
  table.emplace_back("star-6 (identity)",
                     PortNumbering::identity(star_graph(6)));
  table.emplace_back("petersen (symmetric)",
                     PortNumbering::symmetric_regular(petersen_graph()));
  table.emplace_back("fig9a (symmetric)",
                     PortNumbering::symmetric_regular(fig9a_graph()));
  {
    Rng crng(9);
    const Graph g = fig9a_graph();
    table.emplace_back("fig9a (consistent)",
                       PortNumbering::random_consistent(g, crng));
  }
  {
    const Graph g = random_connected_graph(14, 3, 6, rng);
    table.emplace_back("random-14 (random)", PortNumbering::random(g, rng));
  }
  table.emplace_back("grid-4x4 (identity)",
                     PortNumbering::identity(grid_graph(4, 4)));

  const benchutil::Timer t_rows;
  std::vector<std::string> rows(table.size());
  pool.parallel_for(0, table.size(), [&](std::uint64_t i) {
    rows[i] = row(table[i].first, table[i].second);
  }, 1);
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
  benchutil::report_phase("minimisation rows", t_rows.ms(), table.size());

  std::printf("\nShape checks: symmetric numberings compress every view to\n");
  std::printf("a single state (no algorithm distinguishes anything — the\n");
  std::printf("Theorem 17 situation); broadcast views (right columns) are\n");
  std::printf("never finer than the ported ones; graded counts exceed\n");
  std::printf("ungraded exactly where multiplicities matter (MB vs SB).\n");

  std::printf("\n=== Distinct minimal models over all consistent "
              "numberings ===\n\n");
  std::printf("%-26s %-12s   %-5s   %-5s   %-5s   %-5s\n", "graph",
              "numberings", "K++", "K-+", "K+-", "K--");
  quotient_search("path-4", path_graph(4), pool);
  quotient_search("cycle-4", cycle_graph(4), pool);
  quotient_search("cycle-5", cycle_graph(5), pool);
  quotient_search("star-3", star_graph(3), pool);
  benchutil::report_phase("quotient search", g_search_ms, g_scanned);

  std::printf("\nShape checks: views with port information may depend on\n");
  std::printf("the numbering; the portless broadcast view (K--) never does\n");
  std::printf("— its minimal-model count stays 1 per family.\n");

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "quotient", static_cast<long long>(g_scanned), pool.num_threads(), wall,
      g_search_ms > 0 ? 1000.0 * static_cast<double>(g_scanned) / g_search_ms
                      : 0);
  return 0;
}
