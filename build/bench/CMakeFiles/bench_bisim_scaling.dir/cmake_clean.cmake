file(REMOVE_RECURSE
  "CMakeFiles/bench_bisim_scaling.dir/bench_bisim_scaling.cpp.o"
  "CMakeFiles/bench_bisim_scaling.dir/bench_bisim_scaling.cpp.o.d"
  "bench_bisim_scaling"
  "bench_bisim_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
