file(REMOVE_RECURSE
  "libwm_core.a"
)
