// Regenerates the separation theorems as *decision-procedure* outputs:
// for each (problem, class, round bound), whether a distributed
// algorithm exists on a concrete scope — mechanising the paper's
// case-by-case impossibility arguments (and the Section 5.4 open
// question's "is this candidate problem a separator?" workflow).
#include <cstdio>
#include <vector>

#include "core/decision.hpp"
#include "graph/generators.hpp"
#include "problems/catalogue.hpp"

namespace {

using namespace wm;

const char* verdict(const Problem& p, const std::vector<PortNumbering>& scope,
                    ProblemClass c, int rounds) {
  DecisionOptions opts;
  opts.rounds = rounds;
  try {
    return decide_solvable(p, scope, c, opts).solvable ? "solvable" : "--";
  } catch (const DecisionBudgetError&) {
    return "budget";
  }
}

void table(const char* title, const Problem& p,
           const std::vector<PortNumbering>& scope,
           const std::vector<int>& round_bounds) {
  std::printf("%s\n", title);
  std::printf("  %-8s", "rounds");
  for (const ProblemClass c : all_problem_classes()) {
    std::printf(" %9s", problem_class_name(c).c_str());
  }
  std::printf("\n");
  for (int t : round_bounds) {
    if (t < 0) {
      std::printf("  %-8s", "any");
    } else {
      std::printf("  %-8d", t);
    }
    for (const ProblemClass c : all_problem_classes()) {
      std::printf(" %9s", verdict(p, scope, c, t));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Scoped class-membership decisions ===\n");
  std::printf("('--' = no algorithm of that class exists on the scope, at\n");
  std::printf("any t for the 'any' row; solvability checked by exhausting\n");
  std::printf("block colourings of the joint refinement.)\n\n");

  {
    std::vector<PortNumbering> scope;
    for (int k = 2; k <= 4; ++k) {
      scope.push_back(PortNumbering::identity(star_graph(k)));
    }
    table("Theorem 11 scope: stars k = 2..4, leaf-in-star",
          *leaf_in_star_problem(), scope, {0, 1, -1});
  }
  {
    const std::vector<PortNumbering> scope{mis_cycle_witness(6).numbering};
    table("Section 3.1 scope: symmetric consistent C6, maximal independent "
          "set",
          *maximal_independent_set_problem(), scope, {0, 1, -1});
  }
  {
    std::vector<PortNumbering> scope{
        PortNumbering::symmetric_regular(cycle_graph(5))};
    table("Symmetric C5, vertex 3-colouring", *three_colouring_problem(),
          scope, {-1});
  }
  {
    std::vector<PortNumbering> scope;
    for (const Graph& g : {cycle_graph(4), cycle_graph(5), path_graph(4),
                           star_graph(3), complete_graph(4)}) {
      scope.push_back(PortNumbering::identity(g));
    }
    table("Connected mixed scope, Eulerian decision",
          *eulerian_decision_problem(), scope, {0, -1});
  }

  std::printf("Shape checks (paper):\n");
  std::printf(" - leaf-in-star: solvable in the ported classes from t=1,\n");
  std::printf("   never in the broadcast classes (Theorem 11);\n");
  std::printf(" - MIS on a symmetric consistent cycle: unsolvable even in\n");
  std::printf("   VVc (Section 3.1);\n");
  std::printf(" - 3-colouring a symmetric odd cycle: unsolvable (needs\n");
  std::printf("   symmetry breaking);\n");
  std::printf(" - Eulerian decision on connected scopes: solvable at t=0\n");
  std::printf("   from degree parities alone, in every class.\n");
  return 0;
}
