# Empty compiler generated dependencies file for test_class_checker.
# This may be replaced when dependencies are built.
