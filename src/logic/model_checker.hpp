// Model checking: ||phi||_K = {v : K, v |= phi} (Section 4.1).
#pragma once

#include <vector>

#include "logic/formula.hpp"
#include "logic/kripke.hpp"
#include "util/bitset.hpp"

namespace wm {

/// Evaluates phi on every state of K as a packed bitset: bit v is set iff
/// K, v |= phi. Bottom-up over the subformula closure with a memo of
/// packed rows — Boolean connectives run word-wise (64 states per op),
/// modal sweeps gather through the packed child row. This is the
/// production representation; prefer it when the caller can consume bits.
Bitset model_check_bits(const KripkeModel& k, const Formula& phi);

/// Same result unpacked: result[v] == true iff K, v |= phi.
std::vector<bool> model_check(const KripkeModel& k, const Formula& phi);

/// Single-state convenience.
bool model_check_at(const KripkeModel& k, const Formula& phi, int state);

/// Reference implementation: direct scalar recursion over
/// std::vector<bool> following the truth definition, no memoisation.
/// Exponential on DAG-shaped formulas; kept as the differential oracle
/// the bitset path is pinned against bit-for-bit — do not optimise.
std::vector<bool> model_check_naive(const KripkeModel& k, const Formula& phi);

}  // namespace wm
