file(REMOVE_RECURSE
  "libwm_algorithms.a"
)
