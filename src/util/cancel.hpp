// Cooperative cancellation for long-running drivers.
//
// The serving layer (src/serve) admits requests with per-request
// deadlines; the paper's decision procedures can run for seconds on
// adversarial inputs, so every search driver a request can reach
// accepts an optional `const CancelToken*` and polls it at its natural
// round/iteration boundary. Cancellation is cooperative and exception
// based: `check()` throws CancelledError, which unwinds through the
// driver (the parallel helpers rethrow it in the calling thread after
// draining workers) and is mapped to a structured "deadline" error
// reply by the protocol layer.
//
// A token is armed either by an explicit `request_cancel()` (shutdown
// paths) or by an absolute steady-clock deadline (per-request budgets).
// `cancelled()` is safe from any thread; the deadline comparison is a
// clock read, so polling belongs at round granularity, not inside
// per-node inner loops.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace wm {

/// Thrown by CancelToken::check(); derives from runtime_error so
/// drivers that funnel everything through std::exception still
/// propagate it intact.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("cancelled: deadline exceeded") {}
};

class CancelToken {
 public:
  /// Never cancels on its own; request_cancel() arms it.
  CancelToken() = default;

  /// Cancels automatically once `deadline` passes.
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// Convenience: a token expiring `ms` milliseconds from now.
  static CancelToken after_ms(long long ms) {
    return CancelToken(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms));
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void request_cancel() noexcept {
    flag_.store(true, std::memory_order_relaxed);
  }

  bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Throws CancelledError if cancelled; the drivers' polling point.
  void check() const {
    if (cancelled()) throw CancelledError();
  }

 private:
  std::atomic<bool> flag_{false};
  const bool has_deadline_ = false;
  const std::chrono::steady_clock::time_point deadline_{};
};

/// Null-safe polling helper for drivers taking `const CancelToken*`.
inline void poll_cancel(const CancelToken* token) {
  if (token != nullptr) token->check();
}

}  // namespace wm
