file(REMOVE_RECURSE
  "CMakeFiles/test_properties_deep.dir/test_properties_deep.cpp.o"
  "CMakeFiles/test_properties_deep.dir/test_properties_deep.cpp.o.d"
  "test_properties_deep"
  "test_properties_deep.pdb"
  "test_properties_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
