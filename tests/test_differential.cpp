// Differential tests: serial ≡ parallel, pinned end to end.
//
// Each suite runs one of the library's candidate-space scans with
// pool = nullptr (the sequential reference) and on 2- and 8-worker
// pools, over seeded-random and exhaustive small inputs, and requires
// IDENTICAL results — witnesses included, not just verdicts. The
// determinism contract under test: parallel_find_first returns the
// lowest witness, sharded dedup keeps per-key minima, reductions are
// chunk-ordered (see DESIGN.md). Cross-checks tie the results back to
// the paper's semantics: synthesised machines must actually solve their
// problem on every port numbering in scope when executed by the engine,
// and quotient-search models must be bisimilar to what they quotient.
//
// Suites are named differential_* so `ctest -R differential` selects
// exactly this layer. WM_SEED=<n> narrows the random inputs to one seed
// (failure messages print the seed to reproduce).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bisim/bisimulation.hpp"
#include "bisim/quotient.hpp"
#include "core/decision.hpp"
#include "core/solvability.hpp"
#include "core/synthesis.hpp"
#include "cover/covering.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "logic/kripke.hpp"
#include "port/port_numbering.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"
#include "support/canon_harness.hpp"
#include "support/diff_harness.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

using difftest::expect_serial_equals_parallel;
using difftest::seeds_under_test;
using difftest::thread_counts;

// --- helpers ---------------------------------------------------------------

std::string decision_summary(const Decision& d) {
  std::ostringstream os;
  os << "solvable=" << d.solvable << " blocks=" << d.blocks
     << " tried=" << d.assignments_tried << " outputs=";
  for (int v : d.block_output) os << v << ",";
  return os.str();
}

std::string vec_summary(const std::vector<int>& v) {
  std::ostringstream os;
  for (int x : v) os << x << ",";
  return os.str();
}

std::string node_vec_summary(const std::vector<NodeId>& v) {
  std::ostringstream os;
  for (NodeId x : v) os << x << ",";
  return os.str();
}

std::string graph_summary(const Graph& g) {
  std::ostringstream os;
  os << g.num_nodes() << ":";
  for (const Edge& e : g.edges()) os << e.u << "-" << e.v << ",";
  return os.str();
}

std::vector<PortNumbering> star_scope(int k_max) {
  std::vector<PortNumbering> scope;
  for (int k = 2; k <= k_max; ++k) {
    scope.push_back(PortNumbering::identity(star_graph(k)));
  }
  return scope;
}

std::vector<PortNumbering> random_scope(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PortNumbering> scope;
  for (int n : {4, 5}) {
    const Graph g = random_connected_graph(n, 3, 2, rng);
    scope.push_back(PortNumbering::random(g, rng));
  }
  return scope;
}

// --- decision --------------------------------------------------------------

TEST(differential_decision, ExhaustiveSmallScopesAllClasses) {
  struct Case {
    const char* name;
    ProblemPtr problem;
    std::vector<PortNumbering> scope;
  };
  const std::vector<Case> cases = {
      {"leaf-in-star", leaf_in_star_problem(), star_scope(4)},
      {"eulerian", eulerian_decision_problem(),
       {PortNumbering::identity(cycle_graph(4)),
        PortNumbering::identity(path_graph(4))}},
      {"mis-symmetric-C6", maximal_independent_set_problem(),
       {mis_cycle_witness(6).numbering}},
  };
  for (const Case& c : cases) {
    for (const ProblemClass cls : all_problem_classes()) {
      for (const int rounds : {0, 1, -1}) {
        expect_serial_equals_parallel(c.name, [&](ThreadPool* pool) {
          DecisionOptions opts;
          opts.rounds = rounds;
          opts.pool = pool;
          return decision_summary(
              decide_solvable(*c.problem, c.scope, cls, opts));
        });
      }
    }
  }
}

TEST(differential_decision, SeededRandomScopes) {
  for (const std::uint64_t seed : seeds_under_test()) {
    const std::vector<PortNumbering> scope = random_scope(seed);
    for (const ProblemClass cls :
         {ProblemClass::SB, ProblemClass::MB, ProblemClass::VV}) {
      expect_serial_equals_parallel("random scope decision", seed,
                                    [&](ThreadPool* pool) {
        DecisionOptions opts;
        opts.pool = pool;
        return decision_summary(
            decide_solvable(*eulerian_decision_problem(), scope, cls, opts));
      });
    }
  }
}

// --- synthesis -------------------------------------------------------------

std::string synthesis_summary(const std::optional<SynthesisResult>& r,
                              const std::vector<PortNumbering>& scope) {
  if (!r) return "unsolvable";
  std::ostringstream os;
  os << "formula=" << r->formula.to_string() << " blocks=" << r->blocks
     << " delta=" << r->delta
     << " class=" << r->machine->algebraic_class().name() << " runs=";
  ExecutionContext ctx;
  for (const PortNumbering& p : scope) {
    const auto run = execute(*r->machine, p, ctx);
    os << run.rounds << ":" << vec_summary(run.outputs_as_ints()) << ";";
  }
  return os.str();
}

TEST(differential_synthesis, LeafInStarWitnessAndMachine) {
  const auto problem = leaf_in_star_problem();
  const std::vector<PortNumbering> scope = star_scope(4);
  for (const ProblemClass cls : {ProblemClass::SV, ProblemClass::VV,
                                 ProblemClass::VB}) {
    expect_serial_equals_parallel("leaf-in-star synthesis",
                                  [&](ThreadPool* pool) {
      DecisionOptions opts;
      opts.pool = pool;
      return synthesis_summary(synthesise_solution(*problem, scope, cls, opts),
                               scope);
    });
  }
}

TEST(differential_synthesis, MachineSolvesEveryNumberingInScope) {
  // The engine cross-check: whatever the (parallel) synthesis produced
  // must actually solve the problem on each scope instance when run by
  // runtime/engine — for every thread count, with reused scratch.
  const auto problem = leaf_in_star_problem();
  const std::vector<PortNumbering> scope = star_scope(4);
  for (const int threads : thread_counts()) {
    ThreadPool pool(threads);
    DecisionOptions opts;
    opts.pool = &pool;
    const auto r = synthesise_solution(*problem, scope, ProblemClass::SV, opts);
    ASSERT_TRUE(r.has_value());
    ExecutionContext ctx;
    for (const PortNumbering& p : scope) {
      const auto run = execute(*r->machine, p, ctx);
      ASSERT_TRUE(run.stopped);
      EXPECT_TRUE(problem->valid(p.graph(), run.outputs_as_ints()))
          << "machine from threads=" << threads << " failed on a scope graph";
    }
  }
}

std::string multi_summary(const std::optional<MultiSynthesisResult>& r,
                          const std::vector<PortNumbering>& scope) {
  if (!r) return "unsolvable";
  std::ostringstream os;
  os << "alphabet=" << vec_summary(r->alphabet) << " blocks=" << r->blocks
     << " delta=" << r->delta << " formulas=";
  for (const Formula& f : r->value_formulas) os << f.to_string() << "|";
  ExecutionContext ctx;
  for (const PortNumbering& p : scope) {
    const auto run = execute(*r->machine, p, ctx);
    os << run.rounds << ":" << vec_summary(run.outputs_as_ints()) << ";";
  }
  return os.str();
}

TEST(differential_synthesis, MultivaluedColouring) {
  const auto problem = three_colouring_problem();
  const std::vector<PortNumbering> scope = {
      PortNumbering::identity(star_graph(3))};
  expect_serial_equals_parallel("3-colouring synthesis",
                                [&](ThreadPool* pool) {
    DecisionOptions opts;
    opts.pool = pool;
    return multi_summary(
        synthesise_multivalued(*problem, scope, ProblemClass::VV, opts),
        scope);
  });
}

// --- solvability -----------------------------------------------------------

std::string report_summary(const SolvabilityReport& r) {
  std::ostringstream os;
  os << "min=" << (r.min_rounds ? std::to_string(*r.min_rounds) : "none")
     << " fix=" << r.fixpoint_rounds << " blocks=" << r.blocks;
  return os.str();
}

TEST(differential_solvability, InstanceTargetsAndReports) {
  const auto problem = odd_odd_problem();
  for (const std::uint64_t seed : seeds_under_test()) {
    Rng rng(seed);
    const Graph g = random_connected_graph(5, 3, 2, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    // instance_for: the |Y|^n output scan (chunk-ordered reduction).
    expect_serial_equals_parallel("instance_for targets", seed,
                                  [&](ThreadPool* pool) {
      return vec_summary(instance_for(*problem, p, pool).target);
    });
    // analyse_solvability: the fixpoint + min-rounds scans.
    const ScopedInstance inst = instance_for(*problem, p);
    for (const ProblemClass cls :
         {ProblemClass::SB, ProblemClass::MB, ProblemClass::VV}) {
      expect_serial_equals_parallel("solvability report", seed,
                                    [&](ThreadPool* pool) {
        return report_summary(
            analyse_solvability({inst}, cls, g.max_degree(), 16, pool));
      });
    }
  }
}

TEST(differential_solvability, DegenerateRoundBounds) {
  const auto problem = odd_odd_problem();
  const ScopedInstance inst =
      instance_for(*problem, PortNumbering::identity(path_graph(3)));
  for (const int max_rounds : {0, 1}) {
    expect_serial_equals_parallel("tiny round bound", [&](ThreadPool* pool) {
      return report_summary(
          analyse_solvability({inst}, ProblemClass::VV, 2, max_rounds, pool));
    });
  }
}

// --- quotient search -------------------------------------------------------

std::string quotient_summary(const QuotientSearchResult& r) {
  std::ostringstream os;
  os << "scanned=" << r.scanned << " reps=";
  for (std::uint64_t i : r.representatives) os << i << ",";
  os << " fps=";
  // model_fingerprint is the complete canonical key (PR 3), so the
  // summary pins the isomorphism class of every returned model, not
  // merely its refinement class.
  for (const KripkeModel& m : r.models) os << model_fingerprint(m) << "|";
  return os.str();
}

TEST(differential_quotient, ConsistentNumberingFamilies) {
  for (const Graph& g : {path_graph(4), cycle_graph(4), star_graph(3)}) {
    std::vector<PortNumbering> family;
    for_each_consistent_port_numbering(g, [&](const PortNumbering& p) {
      family.push_back(p);
      return true;
    });
    for (const Variant variant : {Variant::PlusPlus, Variant::MinusMinus}) {
      for (const bool graded : {false, true}) {
        expect_serial_equals_parallel("quotient search", [&](ThreadPool* pool) {
          return quotient_summary(search_distinct_quotients(
              family.size(),
              [&](std::uint64_t i) {
                return kripke_from_graph(family[i], variant);
              },
              graded, pool));
        });
      }
    }
  }
}

TEST(differential_quotient, ModelsRoundTripThroughBisimulation) {
  // The models returned by the (parallel) search must be genuine
  // quotients: every state of the source model bisimilar to its image
  // block, and the models already minimal (idempotent minimise).
  const Graph g = cycle_graph(4);
  std::vector<PortNumbering> family;
  for_each_consistent_port_numbering(g, [&](const PortNumbering& p) {
    family.push_back(p);
    return true;
  });
  auto build = [&](std::uint64_t i) {
    return kripke_from_graph(family[i], Variant::PlusPlus);
  };
  for (const int threads : thread_counts()) {
    ThreadPool pool(threads);
    const QuotientSearchResult r =
        search_distinct_quotients(family.size(), build, false, &pool);
    ASSERT_EQ(r.representatives.size(), r.models.size());
    for (std::size_t j = 0; j < r.representatives.size(); ++j) {
      const KripkeModel k = build(r.representatives[j]);
      const Partition p = coarsest_bisimulation(k);
      const KripkeModel& q = r.models[j];
      EXPECT_EQ(q.num_states(), p.num_blocks);
      for (int v = 0; v < k.num_states(); ++v) {
        EXPECT_TRUE(bisimilar_across(k, v, q, p.block[v]))
            << "state " << v << " not bisimilar to its block, threads="
            << threads;
      }
      EXPECT_EQ(minimise(q).num_states(), q.num_states());
    }
  }
}

// --- quotient search: metamorphic properties of the canonical key ----------

/// A seeded family of random Kripke models, the population the
/// metamorphic suites scan. Deterministic per (seed, i).
KripkeModel seeded_model(std::uint64_t seed, std::uint64_t i) {
  Rng rng(seed * 1315423911ULL + i);
  return canontest::random_kripke_model(rng);
}

TEST(differential_quotient, SeededFamilySerialEqualsParallel) {
  // Byte-identical results (witness indices AND canonical fingerprints)
  // at 1, 2 and 8 workers over the seeded random family.
  constexpr std::uint64_t kCount = 30;
  for (const std::uint64_t seed : seeds_under_test()) {
    for (const bool graded : {false, true}) {
      expect_serial_equals_parallel("seeded quotient search", seed,
                                    [&](ThreadPool* pool) {
        return quotient_summary(search_distinct_quotients(
            kCount, [&](std::uint64_t i) { return seeded_model(seed, i); },
            graded, pool));
      });
    }
  }
}

TEST(differential_quotient, CountInvariantUnderRelabelling) {
  // Metamorphic relation: renaming the states of every input model must
  // not change the number of distinct quotients (the key is canonical),
  // and the canonical fingerprint *multiset* of the returned models must
  // be identical — only the representative indices may stay put (they
  // do: relabelling does not reorder the family).
  constexpr std::uint64_t kCount = 30;
  for (const std::uint64_t seed : seeds_under_test()) {
    auto build = [&](std::uint64_t i) { return seeded_model(seed, i); };
    auto build_relabelled = [&](std::uint64_t i) {
      const KripkeModel k = seeded_model(seed, i);
      // An independent permutation per index, deterministic per (seed, i).
      Rng prng(~seed * 2654435761ULL + i);
      return canontest::relabelled_model(
          k, canontest::random_permutation(k.num_states(), prng));
    };
    const QuotientSearchResult plain =
        search_distinct_quotients(kCount, build);
    const QuotientSearchResult relab =
        search_distinct_quotients(kCount, build_relabelled);
    ASSERT_EQ(plain.representatives, relab.representatives)
        << "seed=" << seed;
    ASSERT_EQ(plain.models.size(), relab.models.size());
    for (std::size_t j = 0; j < plain.models.size(); ++j) {
      EXPECT_EQ(model_fingerprint(plain.models[j]),
                model_fingerprint(relab.models[j]))
          << "seed=" << seed << " j=" << j;
    }
  }
}

TEST(differential_quotient, CanonicalCountNeverExceedsRefinementCount) {
  // The PR-2 refinement fingerprint splits some isomorphism classes; the
  // canonical key never does. So counting distinct minimal models with
  // the canonical key can only MERGE refinement classes: canonical count
  // <= refinement count, over every seeded family. (The strict-decrease
  // witness — a family where the inequality is strict — lives in
  // test_canonical.cpp, CanonicalKeyMergesWhatRefinementSplits.)
  constexpr std::uint64_t kCount = 40;
  for (const std::uint64_t seed : seeds_under_test()) {
    std::set<std::string> canonical_keys, refinement_keys;
    for (std::uint64_t i = 0; i < kCount; ++i) {
      const KripkeModel q = minimise(seeded_model(seed, i));
      canonical_keys.insert(model_fingerprint(q));
      refinement_keys.insert(refinement_fingerprint(q));
    }
    EXPECT_LE(canonical_keys.size(), refinement_keys.size())
        << "seed=" << seed;
    const QuotientSearchResult r = search_distinct_quotients(
        kCount, [&](std::uint64_t i) { return seeded_model(seed, i); });
    EXPECT_EQ(r.representatives.size(), canonical_keys.size())
        << "seed=" << seed;
  }
}

TEST(differential_quotient, StrictDecreaseVersusFingerprintEra) {
  // The upgrade must be visible: exhibit a concrete family on which the
  // PR-2 key counted MORE classes than there are isomorphism classes,
  // and show search_distinct_quotients (canonical key) now returns the
  // strictly smaller, correct count. Scan the seeded population for a
  // pair the legacy key splits (deterministic), then search over the
  // two-model family {k, relabelled(k)}.
  Rng rng(13);
  for (int c = 0; c < 500; ++c) {
    const KripkeModel k = canontest::random_kripke_model(rng);
    const KripkeModel m = canontest::relabelled_model(
        k, canontest::random_permutation(k.num_states(), rng));
    const KripkeModel qk = minimise(k);
    const KripkeModel qm = minimise(m);
    if (refinement_fingerprint(qk) == refinement_fingerprint(qm)) continue;
    // Found: the legacy key would count 2 classes in {k, m}.
    const KripkeModel models[] = {k, m};
    const QuotientSearchResult r = search_distinct_quotients(
        2, [&](std::uint64_t i) { return models[i]; });
    EXPECT_EQ(r.representatives.size(), 1u)
        << "canonical key must merge the relabelled pair";
    return;
  }
  FAIL() << "no legacy-split pair found in 500 deterministic cases";
}

// --- covering map search ---------------------------------------------------

std::string covering_summary(const std::optional<std::vector<NodeId>>& phi) {
  return phi ? "phi=" + node_vec_summary(*phi) : "none";
}

TEST(differential_covering, LiftsCoverTheirBase) {
  const PortNumbering base = PortNumbering::symmetric_regular(cycle_graph(6));
  const std::vector<PortNumbering> lifts = {
      double_cover_lift(base).numbering,
      disjoint_copies(base, 2).numbering,
      disjoint_copies(base, 3).numbering,
  };
  for (const PortNumbering& h : lifts) {
    expect_serial_equals_parallel("lift covering search",
                                  [&](ThreadPool* pool) {
      const auto phi = find_covering_map(h, base, pool);
      if (phi) {
        EXPECT_TRUE(is_covering_map(h, base, *phi));
      }
      return covering_summary(phi);
    });
  }
}

TEST(differential_covering, SeededVoltageLifts) {
  for (const std::uint64_t seed : seeds_under_test()) {
    Rng rng(seed);
    const Graph g = random_regular_graph(6, 3, rng);
    const PortNumbering base = PortNumbering::random(g, rng);
    const PortNumbering lift = random_voltage_lift(base, 2, rng).numbering;
    expect_serial_equals_parallel("voltage lift covering", seed,
                                  [&](ThreadPool* pool) {
      const auto phi = find_covering_map(lift, base, pool);
      EXPECT_TRUE(phi.has_value());
      if (phi) {
        EXPECT_TRUE(is_covering_map(lift, base, *phi));
      }
      return covering_summary(phi);
    });
  }
}

TEST(differential_covering, NegativeCasesAgree) {
  const PortNumbering c4 = PortNumbering::identity(cycle_graph(4));
  const PortNumbering p4 = PortNumbering::identity(path_graph(4));
  const PortNumbering star = PortNumbering::identity(star_graph(3));
  const std::vector<std::pair<PortNumbering, PortNumbering>> cases = {
      {p4, c4},    // degree mismatch at the endpoints
      {c4, star},  // wrong structure entirely
      {c4, PortNumbering::identity(cycle_graph(8))},  // too small to cover
  };
  for (const auto& [h, g] : cases) {
    expect_serial_equals_parallel("negative covering search",
                                  [&](ThreadPool* pool) {
      const auto phi = find_covering_map(h, g, pool);
      EXPECT_FALSE(phi.has_value());
      return covering_summary(phi);
    });
  }
}

// --- enumeration -----------------------------------------------------------

TEST(differential_enumeration, ModuloRefinementRepresentativesMatch) {
  EnumerateOptions opts;
  opts.max_degree = 3;
  for (const int n : {4, 5}) {
    std::vector<std::string> reference;
    enumerate_graphs_modulo_refinement(n, opts, [&](const Graph& g) {
      reference.push_back(graph_summary(g));
      return true;
    });
    ASSERT_FALSE(reference.empty());
    for (const int threads : thread_counts()) {
      ThreadPool pool(threads);
      std::vector<std::string> parallel;
      enumerate_graphs_modulo_refinement_parallel(n, opts, pool,
                                                  [&](const Graph& g) {
        parallel.push_back(graph_summary(g));
        return true;
      });
      EXPECT_EQ(parallel, reference) << "n=" << n << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace wm
