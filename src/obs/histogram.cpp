#include "obs/histogram.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace wm::obs {

namespace {

/// Shard choice: a stable per-thread index, assigned round-robin so
/// concurrent recorders spread across shards. The mapping only affects
/// contention, never the merged multiset.
int shard_for_current_thread() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % Histogram::kShards);
  return shard;
}

/// Upper bound of bucket i in microseconds: the largest duration the
/// bucket can hold. Deterministic percentile representative.
double bucket_upper_us(int i) noexcept {
  if (i == 0) return 0.0;
  if (i >= 64) i = 64;
  const double upper_ns = std::ldexp(1.0, i) - 1.0;  // 2^i - 1
  return upper_ns / 1000.0;
}

}  // namespace

void Histogram::record(std::uint64_t nanos) noexcept {
  const int bucket = std::bit_width(nanos);  // 0 for 0, else floor(log2)+1
  shards_[static_cast<std::size_t>(shard_for_current_thread())]
      .buckets[static_cast<std::size_t>(bucket)]
      .fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (nanos > cur && !max_ns_.compare_exchange_weak(
                            cur, nanos, std::memory_order_relaxed)) {
  }
}

HistogramSummary Histogram::summary() const noexcept {
  std::array<std::uint64_t, kBuckets> merged{};
  std::uint64_t count = 0;
  for (const Shard& s : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = s.buckets[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
      merged[static_cast<std::size_t>(i)] += c;
      count += c;
    }
  }
  HistogramSummary out;
  out.count = count;
  out.max_us =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1000.0;
  if (count == 0) return out;
  const auto percentile = [&](double q) {
    // Rank of the percentile sample in the sorted multiset, 1-based.
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q / 100.0 * static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += merged[static_cast<std::size_t>(i)];
      if (seen >= rank) return bucket_upper_us(i);
    }
    return bucket_upper_us(kBuckets - 1);
  };
  out.p50_us = percentile(50.0);
  out.p90_us = percentile(90.0);
  out.p99_us = percentile(99.0);
  return out;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
  max_ns_.store(0, std::memory_order_relaxed);
}

HistogramRegistry& HistogramRegistry::instance() {
  // Leaked singleton, like the counter Registry: summaries are read from
  // atexit-time code paths (bench json writers).
  static HistogramRegistry* r = new HistogramRegistry();
  return *r;
}

Histogram& HistogramRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), new Histogram()).first;
  }
  return *it->second;
}

std::map<std::string, HistogramSummary> HistogramRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSummary> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->summary());
  return out;
}

void HistogramRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : histograms_) h->reset();
}

std::string timings_json() {
  std::string out = "{";
  bool first = true;
  char buf[160];
  for (const auto& [name, s] : histograms().snapshot()) {
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\"%s\": {\"count\": %llu, \"p50_us\": %.3f, "
                  "\"p90_us\": %.3f, \"p99_us\": %.3f, \"max_us\": %.3f}",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.p50_us, s.p90_us, s.p99_us, s.max_us);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace wm::obs
