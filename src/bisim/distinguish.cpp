#include "bisim/distinguish.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "bisim/bisimulation.hpp"

namespace wm {

namespace {

/// One refinement layer: block ids and the characteristic formula of
/// every block.
struct Layer {
  std::vector<int> block;
  int num_blocks = 0;
  std::vector<Formula> chi;  // per block id
};

Layer initial_layer(const KripkeModel& k) {
  // B1 blocks from the shared helper (ids in first-seen state order, so
  // each block's lowest-numbered state is its first representative);
  // characteristic formula of a block = the full literal conjunction of
  // its representative's valuation profile.
  Layer layer;
  const int n = k.num_states();
  Partition p = valuation_partition(k);
  layer.block = std::move(p.block);
  layer.num_blocks = p.num_blocks;
  layer.chi.resize(static_cast<std::size_t>(p.num_blocks));
  std::vector<char> built(static_cast<std::size_t>(p.num_blocks), 0);
  for (int v = 0; v < n; ++v) {
    const int b = layer.block[v];
    if (built[b]) continue;
    built[b] = 1;
    FormulaVec conj;
    for (int q = 1; q <= k.num_props(); ++q) {
      conj.push_back(k.prop_holds(q, v) ? Formula::prop(q)
                                        : Formula::negate(Formula::prop(q)));
    }
    layer.chi[b] = Formula::conj_all(std::move(conj));
  }
  return layer;
}

/// Successor counts of `state` into each block of `prev`, per modality.
std::vector<std::vector<int>> successor_counts(const KripkeModel& k,
                                               const Layer& prev, int state,
                                               const std::vector<Modality>& mods) {
  std::vector<std::vector<int>> counts(
      mods.size(), std::vector<int>(static_cast<std::size_t>(prev.num_blocks), 0));
  for (std::size_t a = 0; a < mods.size(); ++a) {
    for (int w : k.successors(mods[a], state)) {
      ++counts[a][prev.block[w]];
    }
  }
  return counts;
}

Layer refine_layer(const KripkeModel& k, const Layer& prev, bool graded) {
  const int n = k.num_states();
  const auto mods = k.modalities();
  Layer next;
  next.block.assign(static_cast<std::size_t>(n), 0);

  // Signature: previous block + per-modality per-block counts (graded)
  // or presence bits (ungraded).
  using Sig = std::pair<int, std::vector<std::vector<int>>>;
  std::map<Sig, int> dict;
  std::vector<int> rep;  // representative state per new block
  for (int v = 0; v < n; ++v) {
    auto counts = successor_counts(k, prev, v, mods);
    if (!graded) {
      for (auto& row : counts) {
        for (int& c : row) c = c > 0 ? 1 : 0;
      }
    }
    Sig sig{prev.block[v], std::move(counts)};
    auto [it, fresh] = dict.try_emplace(std::move(sig), static_cast<int>(dict.size()));
    next.block[v] = it->second;
    if (fresh) rep.push_back(v);
  }
  next.num_blocks = static_cast<int>(dict.size());

  // Characteristic formulas from each block's representative.
  next.chi.reserve(rep.size());
  for (int b = 0; b < next.num_blocks; ++b) {
    const int s = rep[b];
    FormulaVec conj{prev.chi[prev.block[s]]};
    const auto counts = successor_counts(k, prev, s, mods);
    for (std::size_t a = 0; a < mods.size(); ++a) {
      for (int c = 0; c < prev.num_blocks; ++c) {
        const int cnt = counts[a][c];
        if (graded) {
          if (cnt > 0) {
            conj.push_back(Formula::diamond(mods[a], prev.chi[c], cnt));
          }
          conj.push_back(Formula::negate(
              Formula::diamond(mods[a], prev.chi[c], cnt + 1)));
        } else {
          const Formula d = Formula::diamond(mods[a], prev.chi[c], 1);
          conj.push_back(cnt > 0 ? d : Formula::negate(d));
        }
      }
    }
    next.chi.push_back(Formula::conj_all(std::move(conj)));
  }
  return next;
}

}  // namespace

Formula characteristic_formula(const KripkeModel& k, int state, bool graded) {
  Layer layer = initial_layer(k);
  for (;;) {
    Layer next = refine_layer(k, layer, graded);
    if (next.num_blocks == layer.num_blocks) {
      return layer.chi[layer.block[state]];
    }
    layer = std::move(next);
  }
}

std::vector<Formula> characteristic_formulas(const KripkeModel& k, int rounds,
                                             bool graded) {
  Layer layer = initial_layer(k);
  for (int t = 0; rounds < 0 || t < rounds; ++t) {
    Layer next = refine_layer(k, layer, graded);
    if (next.num_blocks == layer.num_blocks && rounds < 0) break;
    layer = std::move(next);
  }
  std::vector<Formula> out(static_cast<std::size_t>(k.num_states()));
  for (int v = 0; v < k.num_states(); ++v) {
    out[v] = layer.chi[layer.block[v]];
  }
  return out;
}

std::optional<Formula> distinguishing_formula(const KripkeModel& k, int u,
                                              int v, bool graded) {
  Layer layer = initial_layer(k);
  for (;;) {
    if (layer.block[u] != layer.block[v]) {
      return layer.chi[layer.block[u]];
    }
    Layer next = refine_layer(k, layer, graded);
    if (next.num_blocks == layer.num_blocks) return std::nullopt;
    layer = std::move(next);
  }
}

}  // namespace wm
