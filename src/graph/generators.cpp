#include "graph/generators.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/properties.hpp"

namespace wm {

Graph path_graph(int n) {
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle_graph(int n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n >= 3 required");
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph star_graph(int k) {
  if (k < 1) throw std::invalid_argument("star_graph: k >= 1 required");
  Graph g(k + 1);
  for (int leaf = 1; leaf <= k; ++leaf) g.add_edge(0, leaf);
  return g;
}

Graph complete_graph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph complete_bipartite(int a, int b) {
  Graph g(a + b);
  for (int u = 0; u < a; ++u) {
    for (int v = 0; v < b; ++v) g.add_edge(u, a + v);
  }
  return g;
}

Graph hypercube(int d) {
  const int n = 1 << d;
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int bit = 0; bit < d; ++bit) {
      const int v = u ^ (1 << bit);
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

Graph grid_graph(int a, int b) {
  Graph g(a * b);
  auto id = [b](int r, int c) { return r * b + c; };
  for (int r = 0; r < a; ++r) {
    for (int c = 0; c < b; ++c) {
      if (c + 1 < b) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < a) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph petersen_graph() {
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);      // outer pentagon
    g.add_edge(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    g.add_edge(i, 5 + i);            // spokes
  }
  return g;
}

Graph class_g_graph(int k) {
  if (k < 3 || k % 2 == 0) {
    throw std::invalid_argument("class_g_graph: k must be odd and >= 3");
  }
  // Hub = node 0. Gadget g (0-based) occupies nodes 1 + g*(k+2) .. 1 + (g+1)*(k+2) - 1.
  // Within a gadget: node 0 is the apex a; nodes 1..k+1 form K_{k+1} minus
  // the matching {(1,2), (3,4), ..., (k-2,k-1)} ((k-1)/2 pairs); the apex is
  // adjacent to the k-1 matching endpoints 1..k-1 and to the hub.
  const int gadget_size = k + 2;
  Graph g(1 + k * gadget_size);
  for (int gi = 0; gi < k; ++gi) {
    const int base = 1 + gi * gadget_size;
    const int apex = base;
    g.add_edge(0, apex);
    // K_{k+1} on base+1 .. base+k+1, minus the matching.
    for (int i = 1; i <= k + 1; ++i) {
      for (int j = i + 1; j <= k + 1; ++j) {
        const bool matched = (j == i + 1) && (i % 2 == 1) && (i <= k - 2);
        if (matched) continue;  // removed matching edge
        g.add_edge(base + i, base + j);
      }
    }
    for (int i = 1; i <= k - 1; ++i) g.add_edge(apex, base + i);
  }
  if (!g.is_regular(k)) throw std::logic_error("class_g_graph: construction not regular");
  return g;
}

Graph fig9a_graph() { return class_g_graph(3); }

Graph random_bounded_degree_graph(int n, int max_deg, double edge_prob, Rng& rng) {
  std::vector<Edge> candidates;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.uniform01() < edge_prob) candidates.push_back({u, v});
    }
  }
  rng.shuffle(candidates);
  Graph g(n);
  for (const Edge& e : candidates) {
    if (g.degree(e.u) < max_deg && g.degree(e.v) < max_deg) g.add_edge(e.u, e.v);
  }
  return g;
}

Graph random_regular_graph(int n, int k, Rng& rng) {
  if (static_cast<long long>(n) * k % 2 != 0 || k >= n) {
    throw std::invalid_argument("random_regular_graph: need n*k even and k < n");
  }
  for (int attempt = 0; attempt < 10000; ++attempt) {
    // Pairing (configuration) model: k stubs per node, random perfect
    // matching on stubs; reject on self-loops / parallel edges.
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * k);
    for (int v = 0; v < n; ++v) {
      for (int i = 0; i < k; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; ok && i + 1 < stubs.size(); i += 2) {
      const int u = stubs[i], v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        ok = false;
      } else {
        g.add_edge(u, v);
      }
    }
    if (ok && is_connected(g)) return g;
  }
  throw std::runtime_error("random_regular_graph: too many rejections");
}

Graph random_connected_graph(int n, int max_deg, int extra_edges, Rng& rng) {
  if (max_deg < 2 && n > 2) {
    throw std::invalid_argument("random_connected_graph: max_deg too small");
  }
  Graph g(n);
  // Random spanning tree via random attachment, respecting the degree cap.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    // Attach order[i] to a random earlier node with residual degree.
    for (int tries = 0;; ++tries) {
      const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i)));
      if (g.degree(order[j]) < max_deg) {
        g.add_edge(order[i], order[j]);
        break;
      }
      if (tries > 64) {
        // Fall back to a linear scan for any admissible anchor.
        bool attached = false;
        for (int jj = 0; jj < i; ++jj) {
          if (g.degree(order[jj]) < max_deg) {
            g.add_edge(order[i], order[jj]);
            attached = true;
            break;
          }
        }
        if (!attached) throw std::runtime_error("random_connected_graph: stuck");
        break;
      }
    }
  }
  for (int added = 0, tries = 0; added < extra_edges && tries < 50 * (extra_edges + 1);
       ++tries) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v || g.has_edge(u, v)) continue;
    if (g.degree(u) >= max_deg || g.degree(v) >= max_deg) continue;
    g.add_edge(u, v);
    ++added;
  }
  return g;
}

}  // namespace wm
