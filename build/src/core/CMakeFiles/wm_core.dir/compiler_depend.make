# Empty compiler generated dependencies file for wm_core.
# This may be replaced when dependencies are built.
