# Empty compiler generated dependencies file for test_factorisation.
# This may be replaced when dependencies are built.
