#include "graph/canonical.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "graph/graph.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace wm {

std::size_t RelationalStructure::add_relation() {
  out.emplace_back(static_cast<std::size_t>(n));
  in.emplace_back(static_cast<std::size_t>(n));
  return out.size() - 1;
}

void RelationalStructure::add_edge(std::size_t r, int from, int to) {
  out[r][from].push_back(to);
  in[r][to].push_back(from);
}

namespace {

/// Signature of v under `colour`: own colour, then per relation the
/// sorted successor- and predecessor-colour multisets (separated so
/// distinct positions cannot alias). Contains only colour ids, so the
/// sorted order of signatures is invariant under vertex relabelling.
std::vector<int> signature(const RelationalStructure& s,
                           const std::vector<int>& colour, int v) {
  std::vector<int> sig;
  sig.push_back(colour[v]);
  std::vector<int> nb;
  for (std::size_t r = 0; r < s.out.size(); ++r) {
    nb.clear();
    for (int w : s.out[r][v]) nb.push_back(colour[w]);
    std::sort(nb.begin(), nb.end());
    sig.push_back(-2);  // out-side separator
    sig.insert(sig.end(), nb.begin(), nb.end());
    nb.clear();
    for (int w : s.in[r][v]) nb.push_back(colour[w]);
    std::sort(nb.begin(), nb.end());
    sig.push_back(-3);  // in-side separator
    sig.insert(sig.end(), nb.begin(), nb.end());
  }
  return sig;
}

}  // namespace

std::vector<int> refine_colours(const RelationalStructure& s,
                                std::vector<int> colour) {
  const int n = s.n;
  if (n == 0) return colour;
  // Each round renumbers classes by sorted signature order (std::map
  // iteration), so the ids — not merely the partition — are canonical.
  // One extra round normalises possibly non-contiguous input ids (the
  // individualisation step doubles them).
  for (int round = 0; round <= n + 1; ++round) {
    WM_COUNT(canonical.refine_rounds);
    std::map<std::vector<int>, int> ids;
    std::vector<std::vector<int>> key(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      key[v] = signature(s, colour, v);
      ids.emplace(key[v], 0);
    }
    int next_id = 0;
    for (auto& [sig, id] : ids) id = next_id++;
    std::vector<int> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) next[v] = ids.find(key[v])->second;
    if (next == colour) break;
    colour = std::move(next);
  }
  return colour;
}

namespace {

/// Serialises the structure under a discrete colouring (= labelling).
/// Initial colours come first — two certificates are equal iff the
/// relabelled structures coincide, valuation content included.
std::string certify(const RelationalStructure& s,
                    const std::vector<int>& lab) {
  const int n = s.n;
  std::vector<int> inv(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) inv[lab[v]] = v;
  std::string cert = s.header;
  cert += "n";
  cert += std::to_string(n);
  cert += ";c:";
  for (int i = 0; i < n; ++i) {
    cert += std::to_string(s.colour[inv[i]]);
    cert += ',';
  }
  std::vector<std::pair<int, int>> edges;
  for (std::size_t r = 0; r < s.out.size(); ++r) {
    cert += "|r";
    cert += std::to_string(r);
    cert += ':';
    edges.clear();
    for (int v = 0; v < n; ++v) {
      for (int w : s.out[r][v]) edges.emplace_back(lab[v], lab[w]);
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& [a, b] : edges) {
      cert += std::to_string(a);
      cert += '>';
      cert += std::to_string(b);
      cert += ',';
    }
  }
  return cert;
}

struct CanonSearch {
  const RelationalStructure& s;
  CanonicalForm best;
  bool have_best = false;
  std::vector<int> path;  // individualised vertices, root to current

  explicit CanonSearch(const RelationalStructure& structure) : s(structure) {}

  void leaf(const std::vector<int>& lab) {
    WM_COUNT(canonical.leaves);
    std::string cert = certify(s, lab);
    if (!have_best || cert < best.certificate) {
      best.certificate = std::move(cert);
      best.labelling = lab;
      have_best = true;
      return;
    }
    if (cert != best.certificate) return;
    // Two labellings with identical images compose to an automorphism:
    // a = best_lab^{-1} ∘ lab.
    const int n = s.n;
    std::vector<int> inv(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) inv[best.labelling[v]] = v;
    std::vector<int> a(static_cast<std::size_t>(n));
    bool identity = true;
    for (int v = 0; v < n; ++v) {
      a[v] = inv[lab[v]];
      if (a[v] != v) identity = false;
    }
    if (!identity &&
        std::find(best.automorphisms.begin(), best.automorphisms.end(), a) ==
            best.automorphisms.end()) {
      best.automorphisms.push_back(std::move(a));
    }
  }

  /// True if v lies in the orbit of an already-explored branch root under
  /// the discovered automorphisms that fix the current path pointwise —
  /// such a subtree reproduces an explored subtree's certificates exactly.
  bool pruned(int v, const std::vector<int>& tried) const {
    const int n = s.n;
    std::vector<int> parent(static_cast<std::size_t>(n));
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (const std::vector<int>& a : best.automorphisms) {
      bool fixes_path = true;
      for (int p : path) {
        if (a[p] != p) {
          fixes_path = false;
          break;
        }
      }
      if (!fixes_path) continue;
      for (int u = 0; u < n; ++u) {
        const int ru = find(u), rv = find(a[u]);
        if (ru != rv) parent[ru] = rv;
      }
    }
    const int rv = find(v);
    for (int u : tried) {
      if (find(u) == rv) {
        WM_COUNT(canonical.orbit_prunes);
        return true;
      }
    }
    return false;
  }

  void run(const std::vector<int>& colour) {
    const int n = s.n;
    const int num_colours =
        n == 0 ? 0 : *std::max_element(colour.begin(), colour.end()) + 1;
    if (num_colours == n) {
      leaf(colour);
      return;
    }
    // Target cell: the smallest non-singleton class, lowest colour id on
    // ties — both invariants, so every relabelling branches on the same
    // cell.
    std::vector<int> size(static_cast<std::size_t>(num_colours), 0);
    for (int v = 0; v < n; ++v) ++size[colour[v]];
    int target = -1;
    for (int c = 0; c < num_colours; ++c) {
      if (size[c] < 2) continue;
      if (target == -1 || size[c] < size[target]) target = c;
    }
    std::vector<int> tried;
    for (int v = 0; v < n; ++v) {
      if (colour[v] != target) continue;
      if (!tried.empty() && pruned(v, tried)) continue;
      tried.push_back(v);
      // Individualise v: a fresh colour sorted immediately before its
      // class (2c-1 between 2(c-1) and 2c), preserving canonical order.
      std::vector<int> ind(colour);
      for (int& c : ind) c *= 2;
      ind[v] -= 1;
      path.push_back(v);
      run(refine_colours(s, std::move(ind)));
      path.pop_back();
    }
  }
};

}  // namespace

std::uint64_t certificate_hash(const std::string& certificate) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : certificate) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

CanonicalForm canonical_form(const RelationalStructure& s) {
  WM_TIME_SCOPE("canonical.form");
  WM_COUNT(canonical.forms);
  CanonSearch search(s);
  if (s.n == 0) {
    search.best.certificate = certify(s, {});
    return std::move(search.best);
  }
  search.run(refine_colours(s, s.colour));
  return std::move(search.best);
}

// --- Plain graphs ------------------------------------------------------------

RelationalStructure structure_of(const Graph& g) {
  RelationalStructure s;
  s.n = g.num_nodes();
  s.header = "G;";
  s.colour.assign(static_cast<std::size_t>(s.n), 0);
  const std::size_t r = s.add_relation();
  for (const Edge& e : g.edges()) {
    s.add_edge(r, e.u, e.v);
    s.add_edge(r, e.v, e.u);
  }
  return s;
}

CanonicalForm canonical_form(const Graph& g) {
  return canonical_form(structure_of(g));
}

std::string canonical_certificate(const Graph& g) {
  return canonical_form(g).certificate;
}

std::uint64_t canonical_hash(const Graph& g) {
  return certificate_hash(canonical_certificate(g));
}

bool is_isomorphic(const Graph& g, const Graph& h) {
  if (g.num_nodes() != h.num_nodes() || g.num_edges() != h.num_edges()) {
    return false;
  }
  return canonical_certificate(g) == canonical_certificate(h);
}

}  // namespace wm
