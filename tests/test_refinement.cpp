#include "transform/refinement.hpp"

#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"

namespace wm {
namespace {

TEST(Refinement, TraceShape) {
  const Graph g = cycle_graph(5);
  const PortNumbering p = PortNumbering::identity(g);
  const RefinementTrace t = run_refinement(p, 4);
  ASSERT_EQ(t.beta.size(), 5u);
  ASSERT_EQ(t.bset.size(), 5u);
  EXPECT_EQ(t.beta[0][0], Value::unit());
  EXPECT_EQ(t.bset[0][0], Value::set({}));
  // beta_t = (beta_{t-1}, B_{t-1}).
  for (int r = 1; r <= 4; ++r) {
    for (int v = 0; v < 5; ++v) {
      EXPECT_EQ(t.beta[r][v], Value::pair(t.beta[r - 1][v], t.bset[r - 1][v]));
    }
  }
}

TEST(Refinement, Lemma6HoldsAfterTwoDeltaRounds) {
  // The heart of Theorem 4: keys are distinct by round 2*Delta — checked
  // on every connected graph with <= 5 nodes under identity and random
  // numberings, and on structured families.
  Rng rng(1);
  EnumerateOptions opts;
  opts.max_degree = 4;
  for (int n = 2; n <= 5; ++n) {
    enumerate_graphs(n, opts, [&](const Graph& g) {
      const int delta = g.max_degree();
      for (const PortNumbering& p :
           {PortNumbering::identity(g), PortNumbering::random(g, rng)}) {
        const RefinementTrace t = run_refinement(p, 2 * delta);
        EXPECT_TRUE(neighbour_keys_distinct(p, t.beta[2 * delta]))
            << g.to_string();
      }
      return true;
    });
  }
}

TEST(Refinement, Lemma6OnStructuredFamilies) {
  Rng rng(2);
  for (const Graph& g : {star_graph(5), cycle_graph(9), petersen_graph(),
                         complete_graph(5), grid_graph(3, 3), fig9a_graph()}) {
    const int delta = g.max_degree();
    const PortNumbering p = PortNumbering::random(g, rng);
    const int needed = rounds_until_keys_distinct(p, 2 * delta);
    ASSERT_GE(needed, 0) << "keys not distinct within 2*Delta";
    EXPECT_LE(needed, 2 * delta);
  }
}

TEST(Refinement, StarNeedsNoPrologue) {
  // On a star the out-port component of the key alone separates the
  // centre's neighbours... the leaves all use out-port 1, but each leaf
  // has only ONE neighbour, and the centre's neighbours (the leaves) all
  // send (beta, 1, 1) — identical! Keys only become distinct once the
  // betas diverge. Verify the prologue is genuinely needed here.
  const Graph g = star_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const RefinementTrace t = run_refinement(p, 6);
  EXPECT_FALSE(neighbour_keys_distinct(p, t.beta[0]));
  const int needed = rounds_until_keys_distinct(p, 6);
  ASSERT_GE(needed, 1);
  EXPECT_LE(needed, 6);
}

TEST(Refinement, RoundZeroDistinctnessDependsOnTheNumbering) {
  // A single edge is trivially distinct at round 0 (one neighbour each).
  EXPECT_EQ(rounds_until_keys_distinct(PortNumbering::identity(path_graph(2)), 1),
            0);
  // On K5 with the identity numbering every neighbour of node 0 uses its
  // out-port 1 towards 0 (0 is everyone's smallest neighbour), so the
  // keys coincide until the betas diverge — the prologue is essential.
  const Graph k5 = complete_graph(5);
  const PortNumbering p = PortNumbering::identity(k5);
  const RefinementTrace t = run_refinement(p, 1);
  EXPECT_FALSE(neighbour_keys_distinct(p, t.beta[0]));
  EXPECT_GE(rounds_until_keys_distinct(p, 10), 1);
}

TEST(Refinement, MonotoneOnceDistinctStaysDistinct) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 4, 4, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const int delta = g.max_degree();
    const RefinementTrace t = run_refinement(p, 2 * delta);
    bool was_distinct = false;
    for (int r = 0; r <= 2 * delta; ++r) {
      const bool now = neighbour_keys_distinct(p, t.beta[r]);
      if (was_distinct) {
        EXPECT_TRUE(now) << "distinctness lost at round " << r;
      }
      was_distinct = was_distinct || now;
    }
    EXPECT_TRUE(was_distinct);
  }
}

}  // namespace
}  // namespace wm
