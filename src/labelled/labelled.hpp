// Local inputs (Section 3.4): structures (V, E, f) where each node
// carries a local input f(v), and state machines whose initial state may
// depend on f(v) in addition to deg(v).
//
// The paper observes that (i) the classification (1)/(2) transfers
// immediately to labelled graphs (a separation on unlabelled graphs is a
// separation on labelled ones, taking f constant), and (ii) models
// weaker than SB — like the degree-oblivious SBo of Remark 2 — only
// become interesting with local inputs. Both observations are
// executable: tests re-run the separation witnesses with constant
// labels, and the SBo machines in this module solve label-dependent
// problems no unlabelled SBo machine could express.
#pragma once

#include <memory>
#include <vector>

#include "logic/kripke.hpp"
#include "runtime/engine.hpp"
#include "runtime/state_machine.hpp"

namespace wm {

/// A machine over labelled graphs: identical to StateMachine except that
/// the initial state sees the local input.
class LabelledStateMachine {
 public:
  virtual ~LabelledStateMachine() = default;
  virtual AlgebraicClass algebraic_class() const = 0;
  virtual Value init(int degree, const Value& input) const = 0;
  virtual bool is_stopping(const Value& state) const = 0;
  virtual Value message(const Value& state, int port) const = 0;
  virtual Value transition(const Value& state, const Value& inbox,
                           int degree) const = 0;
};

class LabelledLambdaMachine final : public LabelledStateMachine {
 public:
  AlgebraicClass cls;
  std::function<Value(int, const Value&)> init_fn;
  std::function<bool(const Value&)> stopping_fn;
  std::function<Value(const Value&, int)> message_fn;
  std::function<Value(const Value&, const Value&, int)> transition_fn;

  AlgebraicClass algebraic_class() const override { return cls; }
  Value init(int degree, const Value& input) const override {
    return init_fn(degree, input);
  }
  bool is_stopping(const Value& state) const override { return stopping_fn(state); }
  Value message(const Value& state, int port) const override {
    return message_fn(state, port);
  }
  Value transition(const Value& state, const Value& inbox, int degree) const override {
    return transition_fn(state, inbox, degree);
  }
};

/// Runs a labelled machine on (G, p) with per-node inputs.
ExecutionResult execute_labelled(const LabelledStateMachine& m,
                                 const PortNumbering& p,
                                 const std::vector<Value>& inputs,
                                 const ExecutionOptions& options = {});

/// Lifts an unlabelled machine to a labelled one that ignores f.
std::shared_ptr<const LabelledStateMachine> ignore_labels(
    std::shared_ptr<const StateMachine> m);

/// Kripke view of a labelled graph: the usual K_{a,b}(G, p) extended
/// with label propositions — q_{delta + 1 + label(v)} holds at v for
/// integer labels in [0, num_labels). Matches the paper's remark that a
/// uniformly finite amount of local information can be treated as extra
/// atomic propositions.
KripkeModel kripke_from_labelled_graph(const PortNumbering& p, Variant variant,
                                       const std::vector<int>& labels,
                                       int num_labels, int delta = -1);

}  // namespace wm
