// Lock-free concurrent hash set / min-map for parallel exhaustive search.
//
// DiVinE-style open-addressing table built for state-space exploration:
// power-of-two capacity, splitmix-mixed triangular probing, CAS slot
// claims, and *no locks on the hot path* — the replacement for the
// mutex-sharded ShardedMinMap that capped dedup throughput at 8+
// threads. Design constraints it exploits:
//
//  - Keys are never deleted. A slot goes nullptr -> Entry* exactly once,
//    so readers need no hazard pointers or epochs: an Entry observed via
//    an acquire load is immortal and fully constructed (the claiming CAS
//    is a release). Reclamation happens only in the destructor.
//
//  - The per-key value is a *minimum*. Entry values are lowered with a
//    relaxed CAS loop, so the final value per key is a pure function of
//    the inserted multiset — the determinism contract every parallel
//    search in this repo is built on (see DESIGN.md).
//
//  - Growth is cooperative and optional. When a segment passes its load
//    factor (or a probe run exceeds the cap), the inserting thread
//    allocates a segment of twice the capacity and CAS-publishes it as
//    the new head; losers adopt the winner's segment. Old segments stay
//    live (lookups walk the chain newest -> oldest), so no migration and
//    no blocking. A key can, in a narrow race with growth, end up with
//    one entry in two segments; harvest() merges such duplicates by
//    taking the min-of-mins, which preserves the pure-function contract
//    exactly. Callers that can estimate their key count should pre-size
//    (see expected_keys) — a right-sized table never grows and never
//    duplicates.
//
// Observability: fresh/hit *work* counters (dedup.fresh_keys /
// dedup.dedup_hits) are emitted once, at harvest time, from the exact
// distinct-key count — insert-time counting would be timing-dependent in
// the duplicate race above, harvest counting never is, so the totals are
// thread-count-invariant and safe for tools/bench_diff.py to gate.
// Probe lengths, CAS retries and growths are scheduling-dependent and
// join the pool.* telemetry as *info* counters (dedup.probe_steps,
// dedup.cas_retries, dedup.grows).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "util/hash_mix.hpp"

namespace wm {

/// Concurrent map keeping the *minimum* value ever inserted per key.
/// insert_min is lock-free and safe from any number of threads; size()
/// and harvest()/values() are sequential-only (call after the parallel
/// phase — the pool join provides the needed happens-before edge).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LockfreeMinMap {
  static_assert(std::is_trivially_copyable_v<Value>,
                "LockfreeMinMap values live in std::atomic<Value>");

 public:
  /// `expected_keys` pre-sizes the first segment so a correct estimate
  /// (or upper bound) means no growth and no cross-segment duplicates;
  /// 0 starts small and relies on cooperative growth.
  explicit LockfreeMinMap(std::size_t expected_keys = 0) {
    head_.store(new Segment(capacity_for(expected_keys), nullptr),
                std::memory_order_release);
  }

  ~LockfreeMinMap() {
    Segment* s = head_.load(std::memory_order_acquire);
    while (s != nullptr) {
      for (std::size_t i = 0; i <= s->mask; ++i) {
        delete s->slots[i].load(std::memory_order_relaxed);
      }
      Segment* next = s->next;
      delete s;
      s = next;
    }
  }

  LockfreeMinMap(const LockfreeMinMap&) = delete;
  LockfreeMinMap& operator=(const LockfreeMinMap&) = delete;

  /// Records `value` for `key`, keeping the smallest value per key.
  /// Lock-free: at most one allocation per *new* key, no mutex anywhere.
  /// Returns true iff this call claimed a brand-new entry (the key was
  /// absent from every segment this thread could see). Under concurrent
  /// inserts of one key exactly one claimer sees true per segment the
  /// key lands in; in sequential use it is an exact freshness test —
  /// which is how the disk-backed cert store's memory front uses it.
  bool insert_min(const Key& key, const Value& value) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h = hash_mix(static_cast<std::uint64_t>(Hash{}(key)));
    std::uint64_t probe_steps = 0;
    std::uint64_t cas_retries = 0;
    Entry* spare = nullptr;
    bool fresh = false;
    Segment* seg = head_.load(std::memory_order_acquire);
    for (;;) {
      // 1) Existing entry anywhere in the chain (newest -> oldest)?
      Entry* found = nullptr;
      for (Segment* s = seg; s != nullptr && found == nullptr; s = s->next) {
        found = find_entry(*s, h, key, probe_steps);
      }
      if (found != nullptr) {
        merge_min(*found, value, cas_retries);
        break;
      }
      // 2) Claim a slot in the newest segment we saw.
      const Claim claim = try_claim(*seg, h, key, value, spare,
                                    probe_steps, cas_retries);
      if (claim == Claim::kInserted) {
        spare = nullptr;
        fresh = true;
        break;
      }
      if (claim == Claim::kMerged) break;
      // Segment full (load factor or probe cap): publish a bigger head,
      // or adopt the one a faster thread already published, and retry.
      seg = grow(seg);
    }
    delete spare;
    WM_COUNT_INFO_ADD(dedup.probe_steps, probe_steps);
    if (cas_retries > 0) WM_COUNT_INFO_ADD(dedup.cas_retries, cas_retries);
    return fresh;
  }

  /// The minimum recorded for `key` so far, or nullopt. Safe concurrently
  /// with inserts (the returned snapshot may be stale); exact in
  /// sequential use.
  std::optional<Value> find(const Key& key) const {
    const std::uint64_t h = hash_mix(static_cast<std::uint64_t>(Hash{}(key)));
    std::uint64_t probe_steps = 0;
    for (Segment* s = head_.load(std::memory_order_acquire); s != nullptr;
         s = s->next) {
      if (Entry* e = find_entry(*s, h, key, probe_steps)) {
        return e->value.load(std::memory_order_relaxed);
      }
    }
    return std::nullopt;
  }

  /// Number of insert_min calls so far (relaxed snapshot).
  std::uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }

  /// Distinct keys (cross-segment duplicates merged). Sequential-only.
  std::size_t size() const {
    std::size_t n = 0;
    for_each_merged([&](const Key&, Value) { ++n; });
    return n;
  }

  /// Collects the per-key minima, in unspecified order, merging any
  /// cross-segment duplicates by min-of-mins. Sequential-only. Emits the
  /// dedup fresh/hit work counters exactly once per table — both totals
  /// are pure functions of the inserted multiset, hence identical at any
  /// thread count.
  std::vector<Value> values() {
    std::vector<Value> out;
    for_each_merged([&](const Key&, Value v) { out.push_back(v); });
    count_once(out.size());
    return out;
  }

  /// Like values(), but with the keys: (key, min value) pairs in
  /// unspecified order. Sequential-only; emits the counters once unless
  /// `emit_counters` is false (the cert store's memory front drains
  /// through here and must not pollute the gated dedup.* totals).
  std::vector<std::pair<Key, Value>> harvest(bool emit_counters = true) {
    std::vector<std::pair<Key, Value>> out;
    for_each_merged([&](const Key& k, Value v) { out.emplace_back(k, v); });
    if (emit_counters) count_once(out.size());
    return out;
  }

  /// Segments currently chained (1 = never grew). Sequential-only.
  std::size_t segments() const {
    std::size_t n = 0;
    for (Segment* s = head_.load(std::memory_order_acquire); s != nullptr;
         s = s->next) {
      ++n;
    }
    return n;
  }

 private:
  struct Entry {
    const std::uint64_t hash;
    const Key key;
    std::atomic<Value> value;
    Entry(std::uint64_t h, const Key& k, const Value& v)
        : hash(h), key(k), value(v) {}
  };

  struct Segment {
    const std::size_t mask;  // capacity - 1, capacity a power of two
    Segment* const next;     // older, smaller segment
    std::atomic<std::size_t> used{0};
    std::unique_ptr<std::atomic<Entry*>[]> slots;
    Segment(std::size_t capacity, Segment* tail)
        : mask(capacity - 1),
          next(tail),
          slots(new std::atomic<Entry*>[capacity]()) {}
    std::size_t max_load() const { return mask + 1 - (mask + 1) / 4; }
  };

  enum class Claim { kInserted, kMerged, kFull };

  static constexpr std::size_t kMinCapacity = 64;
  static constexpr std::uint64_t kProbeCap = 64;

  static std::size_t capacity_for(std::size_t expected_keys) {
    // Aim below a 3/4 load factor at the caller's estimate.
    std::size_t cap = kMinCapacity;
    while (cap - cap / 4 < expected_keys && cap < (std::size_t{1} << 62)) {
      cap <<= 1;
    }
    return cap;
  }

  /// Probes `s` for `key`; nullptr if absent from this segment. Stops at
  /// the first empty slot: claims always take the first empty slot of
  /// the probe sequence and slots never empty, so no entry lives beyond
  /// one.
  Entry* find_entry(const Segment& s, std::uint64_t h, const Key& key,
                    std::uint64_t& probe_steps) const {
    std::size_t idx = static_cast<std::size_t>(h) & s.mask;
    const std::uint64_t cap = std::min<std::uint64_t>(kProbeCap, s.mask + 1);
    for (std::uint64_t step = 0; step < cap; ++step) {
      Entry* e = s.slots[idx].load(std::memory_order_acquire);
      ++probe_steps;
      if (e == nullptr) return nullptr;
      if (e->hash == h && e->key == key) return e;
      idx = (idx + step + 1) & s.mask;  // triangular: covers all of 2^k
    }
    return nullptr;
  }

  Claim try_claim(Segment& s, std::uint64_t h, const Key& key,
                  const Value& value, Entry*& spare,
                  std::uint64_t& probe_steps, std::uint64_t& cas_retries) {
    std::size_t idx = static_cast<std::size_t>(h) & s.mask;
    const std::uint64_t cap = std::min<std::uint64_t>(kProbeCap, s.mask + 1);
    for (std::uint64_t step = 0; step < cap; ++step) {
      std::atomic<Entry*>& slot = s.slots[idx];
      Entry* cur = slot.load(std::memory_order_acquire);
      ++probe_steps;
      if (cur == nullptr) {
        if (s.used.load(std::memory_order_relaxed) >= s.max_load()) {
          return Claim::kFull;
        }
        if (spare == nullptr) spare = new Entry(h, key, value);
        if (slot.compare_exchange_strong(cur, spare,
                                         std::memory_order_release,
                                         std::memory_order_acquire)) {
          s.used.fetch_add(1, std::memory_order_relaxed);
          return Claim::kInserted;
        }
        ++cas_retries;  // cur now holds the winner; fall through
      }
      if (cur->hash == h && cur->key == key) {
        merge_min(*cur, value, cas_retries);
        return Claim::kMerged;
      }
      idx = (idx + step + 1) & s.mask;
    }
    return Claim::kFull;
  }

  static void merge_min(Entry& e, const Value& value,
                        std::uint64_t& cas_retries) {
    Value cur = e.value.load(std::memory_order_relaxed);
    while (value < cur) {
      if (e.value.compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
        return;
      }
      ++cas_retries;
    }
  }

  Segment* grow(Segment* from) {
    Segment* bigger = new Segment((from->mask + 1) * 2, from);
    Segment* expected = from;
    if (head_.compare_exchange_strong(expected, bigger,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      WM_COUNT_INFO(dedup.grows);
      return bigger;
    }
    delete bigger;  // a faster thread grew; adopt its head
    return expected;
  }

  /// Visits every (key, min value) once, merging cross-segment
  /// duplicates. Single-segment tables (the common, pre-sized case) are
  /// duplicate-free by the CAS arbitration argument and skip the merge
  /// map entirely.
  template <typename Fn>
  void for_each_merged(Fn&& fn) const {
    Segment* head = head_.load(std::memory_order_acquire);
    if (head->next == nullptr) {
      for (std::size_t i = 0; i <= head->mask; ++i) {
        if (Entry* e = head->slots[i].load(std::memory_order_acquire)) {
          fn(e->key, e->value.load(std::memory_order_relaxed));
        }
      }
      return;
    }
    std::unordered_map<Key, Value, Hash> merged;
    for (Segment* s = head; s != nullptr; s = s->next) {
      for (std::size_t i = 0; i <= s->mask; ++i) {
        if (Entry* e = s->slots[i].load(std::memory_order_acquire)) {
          const Value v = e->value.load(std::memory_order_relaxed);
          auto [it, fresh] = merged.try_emplace(e->key, v);
          if (!fresh && v < it->second) it->second = v;
        }
      }
    }
    for (const auto& [k, v] : merged) fn(k, v);
  }

  void count_once(std::size_t distinct) {
    if (counted_) return;
    counted_ = true;
    (void)distinct;  // counters compile out under -DWM_OBS=OFF
    WM_COUNT_ADD(dedup.fresh_keys, distinct);
    WM_COUNT_ADD(dedup.dedup_hits, inserts() - distinct);
  }

  std::atomic<Segment*> head_{nullptr};
  std::atomic<std::uint64_t> inserts_{0};
  bool counted_ = false;
};

}  // namespace wm
