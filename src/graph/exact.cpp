#include "graph/exact.hpp"

#include <algorithm>
#include <functional>

namespace wm {

namespace {

// Branch and bound for min vertex cover on the subgraph of "alive" nodes.
// Classic degree-branching: pick a max-degree alive vertex v; either v is
// in the cover, or all of its neighbours are.
struct VcSolver {
  const Graph& g;
  std::vector<int> alive;      // 1 = still has uncovered incident edges
  std::vector<int> in_cover;   // current partial cover
  std::vector<int> best_cover;
  int best = 0;

  explicit VcSolver(const Graph& graph) : g(graph) {
    const int n = g.num_nodes();
    alive.assign(static_cast<std::size_t>(n), 1);
    in_cover.assign(static_cast<std::size_t>(n), 0);
    best = n;
    best_cover.assign(static_cast<std::size_t>(n), 1);
  }

  int alive_degree(NodeId v) const {
    int d = 0;
    for (NodeId u : g.neighbours(v)) d += alive[u];
    return d;
  }

  void take(NodeId v, std::vector<NodeId>& undo) {
    in_cover[v] = 1;
    alive[v] = 0;
    undo.push_back(v);
  }

  void untake(const std::vector<NodeId>& undo) {
    for (NodeId v : undo) {
      in_cover[v] = 0;
      alive[v] = 1;
    }
  }

  void solve(int size) {
    if (size >= best) return;
    // Find max alive-degree vertex among alive vertices with alive edges.
    NodeId pick = -1;
    int pick_deg = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!alive[v]) continue;
      const int d = alive_degree(v);
      if (d > pick_deg) {
        pick_deg = d;
        pick = v;
      }
    }
    if (pick < 0 || pick_deg == 0) {
      best = size;
      best_cover = in_cover;
      return;
    }
    if (pick_deg == 1) {
      // Kernelisation: every remaining component is a matching of pendant
      // edges; cover one endpoint of each.
      std::vector<NodeId> undo;
      int extra = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!alive[v]) continue;
        for (NodeId u : g.neighbours(v)) {
          if (alive[u] && !in_cover[u] && !in_cover[v]) {
            take(v, undo);
            ++extra;
            break;
          }
        }
      }
      if (size + extra < best) {
        best = size + extra;
        best_cover = in_cover;
      }
      untake(undo);
      return;
    }
    // Branch 1: pick in cover.
    {
      std::vector<NodeId> undo;
      take(pick, undo);
      solve(size + 1);
      untake(undo);
    }
    // Branch 2: all alive neighbours of pick in cover.
    {
      std::vector<NodeId> undo;
      int added = 0;
      for (NodeId u : g.neighbours(pick)) {
        if (alive[u]) {
          take(u, undo);
          ++added;
        }
      }
      alive[pick] = 0;
      solve(size + added);
      alive[pick] = 1;
      untake(undo);
    }
  }
};

}  // namespace

std::vector<int> minimum_vertex_cover(const Graph& g) {
  VcSolver s(g);
  s.solve(0);
  return s.best_cover;
}

int minimum_vertex_cover_size(const Graph& g) {
  VcSolver s(g);
  s.solve(0);
  return s.best;
}

int maximum_independent_set_size(const Graph& g) {
  return g.num_nodes() - minimum_vertex_cover_size(g);
}

bool is_k_colourable(const Graph& g, int k) {
  const int n = g.num_nodes();
  if (n == 0) return true;
  if (k <= 0) return g.num_edges() == 0 && n == 0;
  std::vector<int> colour(static_cast<std::size_t>(n), 0);
  std::function<bool(int)> rec = [&](int v) -> bool {
    if (v == n) return true;
    // Symmetry breaking: node v may only use colours up to 1 + max used.
    int max_used = 0;
    for (int u = 0; u < v; ++u) max_used = std::max(max_used, colour[u]);
    const int limit = std::min(k, max_used + 1);
    for (int c = 1; c <= limit; ++c) {
      bool ok = true;
      for (NodeId u : g.neighbours(v)) {
        if (u < v && colour[u] == c) {
          ok = false;
          break;
        }
      }
      if (ok) {
        colour[v] = c;
        if (rec(v + 1)) return true;
        colour[v] = 0;
      }
    }
    return false;
  };
  return rec(0);
}

int chromatic_number(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  if (g.num_edges() == 0) return 1;
  for (int k = 2;; ++k) {
    if (is_k_colourable(g, k)) return k;
  }
}

}  // namespace wm
