#include "logic/parser.hpp"

#include <cctype>

namespace wm {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Formula parse() {
    Formula f = disj();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing input");
    return f;
  }

 private:
  Formula disj() {
    Formula f = conj();
    for (;;) {
      skip_ws();
      if (!eat('|')) return f;
      f = Formula::disj(f, conj());
    }
  }

  Formula conj() {
    Formula f = unary();
    for (;;) {
      skip_ws();
      if (!eat('&')) return f;
      f = Formula::conj(f, unary());
    }
  }

  Formula unary() {
    skip_ws();
    if (eat('~')) return Formula::negate(unary());
    if (eat('<')) {
      const Modality alpha = modality();
      expect('>');
      int grade = 1;
      skip_ws();
      if (peek() == '>' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
        pos_ += 2;
        grade = integer();
      }
      return Formula::diamond(alpha, unary(), grade);
    }
    if (eat('[')) {
      const Modality alpha = modality();
      expect(']');
      return Formula::box(alpha, unary());
    }
    return atom();
  }

  Formula atom() {
    skip_ws();
    if (eat('(')) {
      Formula f = disj();
      expect(')');
      return f;
    }
    if (eat('T')) return Formula::tru();
    if (eat('F')) return Formula::fls();
    if (eat('q')) return Formula::prop(integer());
    fail("expected atom");
  }

  Modality modality() {
    Modality a;
    a.in = modality_part();
    expect(',');
    a.out = modality_part();
    return a;
  }

  int modality_part() {
    skip_ws();
    if (eat('*')) return 0;
    return integer();
  }

  int integer() {
    skip_ws();
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("expected integer");
    }
    int v = 0;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + (s_[pos_++] - '0');
      if (v > 1000000) fail("integer too large");
    }
    return v;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail((std::string("expected '") + c + "'").c_str());
  }

  [[noreturn]] void fail(const char* what) const {
    throw ParseError(std::string("parse error at offset ") +
                     std::to_string(pos_) + ": " + what + " in \"" + s_ + "\"");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Formula parse_formula(const std::string& text) { return Parser(text).parse(); }

}  // namespace wm
