#include "util/rational.hpp"

#include <gtest/gtest.h>

namespace wm {
namespace {

TEST(Rational, NormalisesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);
  const Rational zero(0, 17);
  EXPECT_EQ(zero.num(), 0);
  EXPECT_EQ(zero.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
}

TEST(Rational, MinHelper) {
  EXPECT_EQ(Rational::min(Rational(1, 2), Rational(1, 3)), Rational(1, 3));
}

TEST(Rational, Predicates) {
  EXPECT_TRUE(Rational(0).is_zero());
  EXPECT_FALSE(Rational(1, 5).is_zero());
  EXPECT_TRUE(Rational(-1, 5).is_negative());
  EXPECT_FALSE(Rational(1, 5).is_negative());
}

TEST(Rational, FloorToPow2) {
  EXPECT_EQ(Rational(1).floor_to_pow2(), Rational(1));
  EXPECT_EQ(Rational(3, 4).floor_to_pow2(), Rational(1, 2));
  EXPECT_EQ(Rational(1, 3).floor_to_pow2(), Rational(1, 4));
  EXPECT_EQ(Rational(1, 4).floor_to_pow2(), Rational(1, 4));
  EXPECT_THROW(Rational(0).floor_to_pow2(), std::domain_error);
  EXPECT_THROW(Rational(3, 2).floor_to_pow2(), std::domain_error);
}

TEST(Rational, LargeIntermediatesReducedIn128Bits) {
  // Sums whose raw cross-multiplied numerators exceed 64 bits but whose
  // reduced forms fit.
  const Rational a(1, 3037000493LL);  // large prime-ish denominator
  const Rational sum = a + a;
  EXPECT_EQ(sum, Rational(2, 3037000493LL));
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3).to_string(), "3");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
}

TEST(Rational, PackingStyleAccumulation) {
  // Mimics the vertex-cover packing inner loop: repeated r -= min(...).
  Rational r(1);
  for (int k = 2; k <= 6; ++k) {
    r -= Rational(1, k * 7);
  }
  EXPECT_GT(r, Rational(0));
  EXPECT_LT(r, Rational(1));
}

}  // namespace
}  // namespace wm
