#include "runtime/class_checker.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace wm {

std::string ClassCheckReport::to_string() const {
  std::ostringstream out;
  out << "multiset=" << (multiset_invariant ? "ok" : "VIOLATED")
      << " set=" << (set_invariant ? "ok" : "VIOLATED")
      << " broadcast=" << (broadcast_invariant ? "ok" : "VIOLATED")
      << "; probed " << rounds_executed
      << (rounds_executed == 1 ? " round" : " rounds") << " on " << nodes
      << (nodes == 1 ? " node" : " nodes") << ", " << transitions_checked
      << " transitions, " << messages_checked << " messages";
  return out.str();
}

ClassCheckReport check_class_invariance(const StateMachine& m,
                                        const PortNumbering& p, Rng& rng,
                                        int trials, int max_rounds) {
  ExecutionContext ctx;
  return check_class_invariance(m, p, rng, ctx, trials, max_rounds);
}

ClassCheckReport check_class_invariance(const StateMachine& m,
                                        const PortNumbering& p, Rng& rng,
                                        ExecutionContext& ctx, int trials,
                                        int max_rounds) {
  if (m.algebraic_class().receive != ReceiveMode::Vector) {
    throw std::invalid_argument(
        "check_class_invariance: requires a Vector-mode machine");
  }
  WM_TRACE_SCOPE("classcheck");
  WM_TIME_SCOPE("classcheck.run");
  WM_COUNT(classcheck.runs);
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  ClassCheckReport report;
  report.nodes = n;

  std::vector<Value>& state = ctx.state;
  state.assign(static_cast<std::size_t>(n), Value());
  for (NodeId v = 0; v < n; ++v) state[v] = m.init(g.degree(v));

  const Value m0 = Value::unit();
  const bool broadcast = m.algebraic_class().send == SendMode::Broadcast;

  std::vector<std::vector<Value>>& outgoing = ctx.outgoing;
  outgoing.resize(static_cast<std::size_t>(n));

  for (int t = 0; t < max_rounds; ++t) {
    bool all_stopped = true;
    for (NodeId v = 0; v < n; ++v) {
      if (!m.is_stopping(state[v])) all_stopped = false;
    }
    if (all_stopped) break;
    ++report.rounds_executed;

    for (NodeId v = 0; v < n; ++v) {
      const int d = g.degree(v);
      outgoing[v].resize(static_cast<std::size_t>(d));
      if (m.is_stopping(state[v])) {
        for (int i = 0; i < d; ++i) outgoing[v][i] = m0;
        continue;
      }
      for (int i = 1; i <= d; ++i) outgoing[v][i - 1] = m.message(state[v], i);
      // Broadcast invariance: all ports carry the same message.
      for (int i = 1; i < d; ++i) {
        ++report.messages_checked;
        if (outgoing[v][i] != outgoing[v][0]) report.broadcast_invariant = false;
      }
    }
    (void)broadcast;

    std::vector<Value>& next = ctx.next;
    next.assign(static_cast<std::size_t>(n), Value());
    for (NodeId u = 0; u < n; ++u) {
      if (m.is_stopping(state[u])) {
        next[u] = state[u];
        continue;
      }
      const int d = g.degree(u);
      ValueVec inbox(static_cast<std::size_t>(d));
      for (int i = 1; i <= d; ++i) {
        const PortRef src = p.backward({u, i});
        inbox[i - 1] = outgoing[src.node][src.index - 1];
      }
      const Value base = m.transition(state[u], Value::tuple(inbox), d);
      ++report.transitions_checked;
      for (int trial = 0; trial < trials; ++trial) {
        // Multiset invariance: permute the inbox.
        ValueVec perm = inbox;
        rng.shuffle(perm);
        if (m.transition(state[u], Value::tuple(perm), d) != base) {
          report.multiset_invariant = false;
        }
        // Set invariance: replace a random entry by a copy of another
        // entry *already present* elsewhere, preserving the set but not
        // the multiset — only meaningful with >= 2 distinct entries.
        if (d >= 2) {
          ValueVec dup = inbox;
          const std::size_t i = rng.below(dup.size());
          const std::size_t j = rng.below(dup.size());
          if (i != j) {
            const Value removed = dup[i];
            dup[i] = dup[j];
            // Set preserved only if `removed` still occurs somewhere.
            bool still_present = false;
            for (const Value& x : dup) {
              if (x == removed) still_present = true;
            }
            if (still_present &&
                m.transition(state[u], Value::tuple(dup), d) != base) {
              report.set_invariant = false;
            }
          }
        }
      }
      next[u] = base;
    }
    state.swap(next);
  }
  WM_COUNT_ADD(classcheck.rounds, report.rounds_executed);
  WM_COUNT_ADD(classcheck.transitions, report.transitions_checked);
  return report;
}

}  // namespace wm
