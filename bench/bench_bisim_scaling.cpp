// Timing bench: partition-refinement bisimulation — the engine behind
// every separation result — as a function of graph size, Kripke variant
// and gradedness, run as a batch throughput workload on the task-parallel
// substrate (--threads N): each configuration pre-generates a batch of
// random models and refines them across the pool.
//
// Deterministic results (block counts, printed to stdout) are identical
// at any thread count; wall-clock and models/sec go to stderr and
// BENCH_bisim_scaling.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bisim/bisimulation.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

struct Config {
  const char* label;
  int n;
  Variant variant;
  bool graded;
  int batch;
};

double run_config(const Config& cfg, ThreadPool& pool, std::size_t* models_out) {
  // Batch generation is seeded per config and sequential, so the models
  // (and hence the block counts below) never depend on the thread count.
  Rng rng(static_cast<std::uint64_t>(cfg.n) * 31 +
          static_cast<std::uint64_t>(cfg.variant) * 7 + (cfg.graded ? 1 : 0));
  std::vector<KripkeModel> models;
  models.reserve(static_cast<std::size_t>(cfg.batch));
  for (int b = 0; b < cfg.batch; ++b) {
    const Graph g = random_connected_graph(cfg.n, 4, cfg.n / 2, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    models.push_back(kripke_from_graph(p, cfg.variant));
  }

  std::vector<int> blocks(models.size());
  const benchutil::Timer timer;
  pool.parallel_for(0, models.size(), [&](std::uint64_t i) {
    WM_TIME_SCOPE("bench.bisim_scaling.minimise");
    const Partition part = cfg.graded
                               ? coarsest_graded_bisimulation(models[i])
                               : coarsest_bisimulation(models[i]);
    blocks[i] = part.num_blocks;
  }, 1);
  const double ms = timer.ms();

  long long total_blocks = 0;
  for (int b : blocks) total_blocks += b;
  std::printf("%-28s n=%-5d batch=%-4d mean blocks %.1f\n", cfg.label, cfg.n,
              cfg.batch, static_cast<double>(total_blocks) / cfg.batch);
  benchutil::report_phase(cfg.label, ms, models.size());
  *models_out = models.size();
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());

  std::printf("=== Bisimulation scaling: batches of random models ===\n");
  const std::vector<Config> configs = {
      {"bisim ++ n=16", 16, Variant::PlusPlus, false, 64},
      {"bisim ++ n=64", 64, Variant::PlusPlus, false, 32},
      {"bisim ++ n=256", 256, Variant::PlusPlus, false, 8},
      {"bisim -- n=16", 16, Variant::MinusMinus, false, 64},
      {"bisim -- n=64", 64, Variant::MinusMinus, false, 32},
      {"bisim -- n=256", 256, Variant::MinusMinus, false, 8},
      {"graded bisim -- n=64", 64, Variant::MinusMinus, true, 32},
      {"graded bisim -- n=256", 256, Variant::MinusMinus, true, 8},
      {"graded bisim -- n=512", 512, Variant::MinusMinus, true, 4},
  };

  double wall = 0;
  std::size_t models = 0;
  for (const Config& cfg : configs) {
    std::size_t batch = 0;
    wall += run_config(cfg, pool, &batch);
    models += batch;
  }

  // Lemma 15 symmetric-numbering row (regular graphs), batched likewise.
  {
    Rng rng(3);
    std::vector<Graph> graphs;
    for (int b = 0; b < 64; ++b) graphs.push_back(random_regular_graph(64, 4, rng));
    const benchutil::Timer timer;
    std::vector<int> consistent(graphs.size());
    pool.parallel_for(0, graphs.size(), [&](std::uint64_t i) {
      WM_TIME_SCOPE("bench.bisim_scaling.symmetric");
      consistent[i] = PortNumbering::symmetric_regular(graphs[i]).is_consistent();
    }, 1);
    const double ms = timer.ms();
    int total = 0;
    for (int c : consistent) total += c;
    std::printf("%-28s n=%-5d batch=%-4d consistent %d\n",
                "lemma15 symmetric numbering", 64, 64, total);
    benchutil::report_phase("lemma15 symmetric numbering", ms, graphs.size());
    wall += ms;
    models += graphs.size();
  }

  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "bisim_scaling", static_cast<long long>(models), pool.num_threads(),
      wall, wall > 0 ? 1000.0 * static_cast<double>(models) / wall : 0);
  return 0;
}
