# Empty dependencies file for wm_logic.
# This may be replaced when dependencies are built.
