// Dedup-table contention microbench: the lock-free LockfreeMinMap
// (util/lockfree_set.hpp, the engine under every ParallelVisitor
// dedup_scan) against the retired mutex-sharded ShardedMinMap, under
// insert-heavy (mostly fresh keys) and hit-heavy (few keys, endless
// re-encounters) mixes at 1/4/8/16 threads — the experiment that
// justifies the visitor core's table choice with numbers.
//
// Determinism: the thread sweep is FIXED (1/4/8/16) regardless of
// --threads, so the work done — and therefore stdout and every work
// counter — is byte-identical at any --threads setting; the CI smoke
// loop diffs exactly that. --threads only sizes the pool used... for
// nothing here: each sweep step builds its own pool. Distinct-key counts
// and min-checksums go to stdout; insert rates go to stderr and
// BENCH_dedup.json.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "util/hash_mix.hpp"
#include "util/lockfree_set.hpp"
#include "util/parallel.hpp"
#include "util/sharded.hpp"

namespace {

using namespace wm;

constexpr std::uint64_t kInserts = 1 << 20;  // per run

struct Mix {
  const char* name;
  std::uint64_t keyspace;  // distinct keys the insert stream draws from
};

// Insert-heavy: ~half the stream is a first encounter. Hit-heavy: 256
// keys shared by a million inserts — pure merge contention.
constexpr Mix kMixes[] = {{"insert-heavy", kInserts / 2},
                         {"hit-heavy", 256}};

/// Deterministic insert stream: key of the i-th insert. Mixed so
/// neither table sees sequential-integer locality for free.
std::uint64_t key_at(std::uint64_t i, std::uint64_t keyspace) {
  return hash_mix(i % keyspace);
}

struct RunResult {
  std::uint64_t distinct = 0;
  std::uint64_t checksum = 0;  // XOR of per-key minima: order-free
  double ms = 0;
};

template <typename Fill, typename Harvest>
RunResult timed_run(int threads, Fill&& fill, Harvest&& harvest) {
  ThreadPool pool(threads);
  const benchutil::Timer timer;
  pool.parallel_for(0, kInserts, fill);
  RunResult r;
  r.ms = timer.ms();
  harvest(r);
  return r;
}

RunResult run_lockfree(const Mix& mix, int threads) {
  LockfreeMinMap<std::uint64_t, std::uint64_t> table(
      static_cast<std::size_t>(mix.keyspace));
  return timed_run(
      threads,
      [&](std::uint64_t i) { table.insert_min(key_at(i, mix.keyspace), i); },
      [&](RunResult& r) {
        for (const std::uint64_t v : table.values()) {
          ++r.distinct;
          r.checksum ^= hash_mix(v);
        }
      });
}

RunResult run_sharded(const Mix& mix, int threads) {
  ShardedMinMap<std::uint64_t, std::uint64_t> table;
  return timed_run(
      threads,
      [&](std::uint64_t i) { table.insert_min(key_at(i, mix.keyspace), i); },
      [&](RunResult& r) {
        for (const std::uint64_t v : table.values()) {
          ++r.distinct;
          r.checksum ^= hash_mix(v);
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_threads(argc, argv);  // arm obs env hooks; sweep is fixed
  const benchutil::Timer total;

  std::printf("=== Dedup-table contention (lock-free vs sharded) ===\n\n");
  std::printf("%zu inserts per run; fixed thread sweep 1/4/8/16\n\n",
              static_cast<std::size_t>(kInserts));
  std::printf("%-14s %-10s %-10s %-18s\n", "mix", "table", "distinct",
              "min-checksum");

  double best_rate = 0;
  for (const Mix& mix : kMixes) {
    RunResult printed{};
    bool have_printed = false;
    for (const char* which : {"lock-free", "sharded"}) {
      const bool lockfree = which[0] == 'l';
      for (const int threads : {1, 4, 8, 16}) {
        const RunResult r =
            lockfree ? run_lockfree(mix, threads) : run_sharded(mix, threads);
        // Content is a pure function of the insert multiset: both
        // tables, at every thread count, must agree. Print it once per
        // (mix, table) — identical lines would only repeat it.
        if (threads == 1) {
          std::printf("%-14s %-10s %-10llu %016llx\n", mix.name, which,
                      static_cast<unsigned long long>(r.distinct),
                      static_cast<unsigned long long>(r.checksum));
          if (have_printed &&
              (r.distinct != printed.distinct ||
               r.checksum != printed.checksum)) {
            std::printf("MISMATCH between tables on %s\n", mix.name);
            return 1;
          }
          printed = r;
          have_printed = true;
        } else if (r.distinct != printed.distinct ||
                   r.checksum != printed.checksum) {
          std::printf("MISMATCH at %s/%s threads=%d\n", mix.name, which,
                      threads);
          return 1;
        }
        const double rate =
            r.ms > 0 ? static_cast<double>(kInserts) / 1000.0 / r.ms : 0;
        std::fprintf(stderr,
                     "[perf]  %-14s %-10s threads=%-3d %10.2f ms  "
                     "%8.2f Minserts/s\n",
                     mix.name, which, threads, r.ms, rate);
        if (lockfree && rate > best_rate) best_rate = rate;
      }
    }
  }

  std::printf("\nShape checks: per-mix distinct counts and checksums agree\n");
  std::printf("across both tables and all thread counts — the tables are\n");
  std::printf("observationally identical; only their scaling differs.\n");

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json("dedup",
                              static_cast<long long>(kInserts) * 2 * 4,
                              16, wall, best_rate * 1.0e6);
  return 0;
}
