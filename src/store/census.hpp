// The streaming census driver: bounded-memory enumeration over an
// indexed candidate space, deduplicated against the disk-backed
// CertStore, checkpointed so a killed run resumes where it stopped.
//
// The space is abstract — `CensusSpace` carries a kind tag, a candidate
// count, and a classify function mapping a candidate index to its
// canonical certificate (nullopt = inadmissible). The graph / port
// numbering / Kripke-model families are constructed by the callers
// (tools/wm_census.cpp, src/graph/enumerate.cpp); this layer never sees
// a Graph, so wm_store stays below wm_graph in the link order.
//
// The loop (DESIGN.md "Streaming census"):
//
//   for each batch [next, next+batch):
//     ParallelVisitor::dedup_stream   — parallel scan, within-batch dedup
//     store.insert_fresh per streamed (key, rep)
//                                     — cross-batch dedup, sequential
//     every `checkpoint_every` batches (and at the end / budget stop):
//       store.seal(); store.compact_if_needed();
//       write_checkpoint(frontier + cumulative totals + segment set);
//       [WM_CRASH_AFTER test hook fires HERE — after commit, before purge]
//       store.purge_unreferenced();
//
// Determinism: batches advance in index order with a fixed batch size,
// dedup_stream replays (key, rep) pairs sorted by rep, and insert_fresh
// is sequential — so classes, admissible, scanned and the store content
// are pure functions of (space, batch size), never of thread count, and
// an interrupted-then-resumed census equals an uninterrupted one
// (cumulative totals ride in the checkpoint). The CI kill/resume gate
// diffs exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "store/cert_store.hpp"
#include "util/parallel.hpp"

namespace wm::store {

/// An indexed candidate space with a canonical-certificate classifier.
struct CensusSpace {
  std::string kind;          // e.g. "graph-all-n6" — store/checkpoint tag
  std::uint64_t count = 0;   // candidate indices are [0, count)
  /// Canonical certificate of candidate i, or nullopt if inadmissible.
  /// Must be pure (same i → same bytes) and thread-safe.
  std::function<std::optional<std::string>(std::uint64_t)> classify;
};

struct CensusOptions {
  std::uint64_t batch = 1u << 16;   // frontier batch size (determinism knob)
  std::uint64_t checkpoint_every = 4;  // batches per checkpoint commit
  /// Stop (checkpoint + return complete=false) at the first batch
  /// boundary past this wallclock budget. 0 = run to completion.
  double budget_secs = 0.0;
  /// Stop after this many batches *this run* (checkpointing first).
  /// 0 = unlimited. For in-process pause/resume tests.
  std::uint64_t max_batches = 0;
  std::string checkpoint_path;  // required
  /// Resume from checkpoint_path if it exists; otherwise (or when
  /// false) wipe the store and start cold.
  bool resume = false;
  /// Test hook: SIGKILL this process immediately after the Nth
  /// checkpoint commit of this run (1-based), *before* the purge —
  /// the gnarliest crash window. 0 = disabled. Wired to the
  /// WM_CRASH_AFTER env var by tools/wm_census.
  std::uint64_t crash_after = 0;
  StoreOptions store;
};

/// Cumulative census state — equal for interrupted-and-resumed vs
/// uninterrupted runs of the same (space, batch).
struct CensusResult {
  std::string kind;
  std::uint64_t space = 0;
  std::uint64_t scanned = 0;     // candidates visited
  std::uint64_t admissible = 0;  // candidates that produced a certificate
  std::uint64_t classes = 0;     // distinct certificates (fresh inserts)
  std::uint64_t batches = 0;     // batches committed
  std::uint64_t checkpoints = 0; // checkpoint commits
  bool complete = false;         // frontier reached the end of the space
  bool resumed = false;          // this run started from a checkpoint
  StoreStats store;              // store state at return
};

/// Runs (or resumes) the census of `space` against the store at
/// `store_dir`, checkpointing to options.checkpoint_path. `pool` may be
/// nullptr (inline scan). Throws StoreError on any store/checkpoint
/// defect, std::invalid_argument on option misuse.
CensusResult run_census(const CensusSpace& space, const std::string& store_dir,
                        ThreadPool* pool, const CensusOptions& options);

}  // namespace wm::store
