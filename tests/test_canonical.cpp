// Property and metamorphic tests for the canonical-form subsystem
// (graph/canonical.hpp): relabelling invariance across all three
// reduction kinds, completeness cross-checked against the exhaustive
// isomorphism test, discreteness of the final colouring, and
// automorphism-group sanity on structures whose groups are known.
//
// Seeded sweeps follow the WM_SEED convention of canon_harness.hpp.
#include "graph/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "bisim/quotient.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/isomorphism.hpp"
#include "logic/kripke.hpp"
#include "port/port_numbering.hpp"
#include "support/canon_harness.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

using canontest::automorphism_count;
using canontest::is_structure_automorphism;
using canontest::random_kripke_model;
using canontest::random_permutation;
using canontest::relabelled_model;
using canontest::relabelled_numbering;
using canontest::seeds_under_test;

constexpr int kCasesPerSeed = 100;  // x5 base seeds = 500 cases per kind

bool is_permutation_of_range(const std::vector<int>& lab, int n) {
  if (static_cast<int>(lab.size()) != n) return false;
  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (int x : lab) {
    if (x < 0 || x >= n || hit[x]) return false;
    hit[x] = true;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Relabelling invariance: for every structure kind, the certificate of a
// randomly relabelled copy is byte-identical, the labelling is a
// permutation (the search only terminates on discrete colourings), the
// composed map old -> canonical -> relabelled-old is a genuine
// isomorphism, and every discovered automorphism is genuine.
// ---------------------------------------------------------------------------

TEST(CanonicalInvariance, GraphCertificateSurvivesRelabelling) {
  for (const std::uint64_t seed : seeds_under_test()) {
    Rng rng(seed);
    for (int c = 0; c < kCasesPerSeed; ++c) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
      const int n = 2 + static_cast<int>(rng.below(7));  // 2..8 nodes
      const Graph g = random_connected_graph(
          n, /*max_deg=*/3 + static_cast<int>(rng.below(3)),
          static_cast<int>(rng.below(4)), rng);
      const std::vector<int> perm = random_permutation(g.num_nodes(), rng);
      const Graph h = g.relabelled(perm);

      const CanonicalForm cf_g = canonical_form(g);
      const CanonicalForm cf_h = canonical_form(h);
      ASSERT_EQ(cf_g.certificate, cf_h.certificate);
      ASSERT_TRUE(is_permutation_of_range(cf_g.labelling, g.num_nodes()));
      ASSERT_TRUE(is_permutation_of_range(cf_h.labelling, g.num_nodes()));
      EXPECT_EQ(canonical_hash(g), canonical_hash(h));

      // Compose g --lab_g--> canonical <--lab_h-- h into a g -> h map.
      std::vector<NodeId> inv_h(static_cast<std::size_t>(g.num_nodes()));
      for (int v = 0; v < g.num_nodes(); ++v) inv_h[cf_h.labelling[v]] = v;
      std::vector<NodeId> map(static_cast<std::size_t>(g.num_nodes()));
      for (int v = 0; v < g.num_nodes(); ++v) map[v] = inv_h[cf_g.labelling[v]];
      EXPECT_TRUE(is_isomorphism(g, h, map));

      const RelationalStructure s = structure_of(g);
      for (const auto& a : cf_g.automorphisms) {
        EXPECT_TRUE(is_structure_automorphism(s, a));
      }
    }
  }
}

TEST(CanonicalInvariance, PortNumberingCertificateSurvivesRelabelling) {
  for (const std::uint64_t seed : seeds_under_test()) {
    Rng rng(seed);
    for (int c = 0; c < kCasesPerSeed; ++c) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
      const int n = 2 + static_cast<int>(rng.below(5));  // 2..6 nodes
      const Graph g = random_connected_graph(n, /*max_deg=*/3,
                                             static_cast<int>(rng.below(3)), rng);
      const PortNumbering p = rng.chance(1, 2)
                                  ? PortNumbering::random(g, rng)
                                  : PortNumbering::random_consistent(g, rng);
      const std::vector<NodeId> perm = random_permutation(g.num_nodes(), rng);
      const PortNumbering q = relabelled_numbering(p, perm);
      ASSERT_TRUE(q.is_valid());

      const CanonicalForm cf_p = canonical_form(p);
      const CanonicalForm cf_q = canonical_form(q);
      ASSERT_EQ(cf_p.certificate, cf_q.certificate);
      ASSERT_TRUE(is_permutation_of_range(cf_p.labelling, g.num_nodes()));
      EXPECT_EQ(canonical_hash(p), canonical_hash(q));
      EXPECT_TRUE(is_isomorphic(p, q));

      const RelationalStructure s = structure_of(p);
      for (const auto& a : cf_p.automorphisms) {
        EXPECT_TRUE(is_structure_automorphism(s, a));
      }
    }
  }
}

TEST(CanonicalInvariance, KripkeCertificateSurvivesRelabelling) {
  for (const std::uint64_t seed : seeds_under_test()) {
    Rng rng(seed);
    for (int c = 0; c < kCasesPerSeed; ++c) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
      const KripkeModel k = random_kripke_model(rng);
      const std::vector<int> perm = random_permutation(k.num_states(), rng);
      const KripkeModel m = relabelled_model(k, perm);

      const CanonicalForm cf_k = canonical_form(k);
      const CanonicalForm cf_m = canonical_form(m);
      ASSERT_EQ(cf_k.certificate, cf_m.certificate);
      ASSERT_TRUE(is_permutation_of_range(cf_k.labelling, k.num_states()));
      EXPECT_EQ(canonical_hash(k), canonical_hash(m));
      EXPECT_TRUE(is_isomorphic(k, m));

      const RelationalStructure s = structure_of(k);
      for (const auto& a : cf_k.automorphisms) {
        EXPECT_TRUE(is_structure_automorphism(s, a));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Completeness vs the exhaustive backtracking test: on an exhaustive
// enumeration, equal certificates must mean isomorphic (within-bucket
// checked by the pre-existing exact test) and distinct certificates must
// mean non-isomorphic (cross-bucket representatives pairwise refuted).
// The n=7 analogue lives in test_canonical_slow.cpp.
// ---------------------------------------------------------------------------

TEST(CanonicalCompleteness, AgreesWithExhaustiveIsoUpTo6) {
  for (int n = 1; n <= 6; ++n) {
    SCOPED_TRACE("n=" + std::to_string(n));
    EnumerateOptions opts;
    opts.connected_only = false;
    std::map<std::string, std::vector<Graph>> buckets;
    enumerate_graphs(n, opts, [&](const Graph& g) {
      buckets[canonical_certificate(g)].push_back(g);
      return true;
    });
    // Within a bucket: every member isomorphic to the representative,
    // per the pre-existing exhaustive backtracking test (n <= 6 stays
    // below its cutoff, so no canonical routing is involved).
    for (const auto& [cert, members] : buckets) {
      for (std::size_t i = 1; i < members.size(); ++i) {
        ASSERT_TRUE(find_isomorphism(members[0], members[i]).has_value());
      }
    }
    // Across buckets: representatives pairwise non-isomorphic.
    std::vector<const Graph*> reps;
    reps.reserve(buckets.size());
    for (const auto& [cert, members] : buckets) reps.push_back(&members[0]);
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = i + 1; j < reps.size(); ++j) {
        ASSERT_FALSE(find_isomorphism(*reps[i], *reps[j]).has_value());
      }
    }
  }
}

TEST(CanonicalCompleteness, RefinementEquivalentPairsAreSeparated) {
  // K_{3,3} and the triangular prism are both 3-regular on 6 nodes, so
  // colour refinement cannot tell them apart — the canonical form must.
  const Graph k33 = complete_bipartite(3, 3);
  Graph prism(6);
  prism.add_edge(0, 1);
  prism.add_edge(1, 2);
  prism.add_edge(2, 0);
  prism.add_edge(3, 4);
  prism.add_edge(4, 5);
  prism.add_edge(5, 3);
  prism.add_edge(0, 3);
  prism.add_edge(1, 4);
  prism.add_edge(2, 5);
  EXPECT_EQ(refinement_signature(k33), refinement_signature(prism));
  EXPECT_NE(canonical_certificate(k33), canonical_certificate(prism));
  EXPECT_FALSE(is_isomorphic(k33, prism));

  // Likewise C6 vs two disjoint triangles (both 2-regular).
  const Graph c6 = cycle_graph(6);
  Graph two_c3(6);
  two_c3.add_edge(0, 1);
  two_c3.add_edge(1, 2);
  two_c3.add_edge(2, 0);
  two_c3.add_edge(3, 4);
  two_c3.add_edge(4, 5);
  two_c3.add_edge(5, 3);
  EXPECT_EQ(refinement_signature(c6), refinement_signature(two_c3));
  EXPECT_NE(canonical_certificate(c6), canonical_certificate(two_c3));
  EXPECT_FALSE(is_isomorphic(c6, two_c3));
}

TEST(CanonicalCompleteness, LargeGraphRoutingMatchesWitness) {
  // Above the exhaustive cutoff find_isomorphism routes through the
  // canonical form; the returned witness must still be a genuine map.
  Rng rng(2012);
  const Graph g = random_connected_graph(12, 4, 5, rng);
  const std::vector<NodeId> perm = random_permutation(g.num_nodes(), rng);
  const Graph h = g.relabelled(perm);
  const auto witness = find_isomorphism(g, h);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(is_isomorphism(g, h, *witness));

  // And a genuinely different 12-node graph must be refuted.
  Graph h2 = h;
  // Petersen + 2 isolated nodes has a different degree multiset only if
  // g does not happen to be 3-regular; instead compare against g with one
  // edge moved, which is almost surely non-isomorphic but keeps n.
  const auto edges = h2.edges();
  Graph g2(g.num_nodes());
  for (std::size_t i = 1; i < edges.size(); ++i) {
    g2.add_edge(edges[i].u, edges[i].v);
  }
  if (canonical_certificate(g2) != canonical_certificate(h)) {
    EXPECT_FALSE(find_isomorphism(g2, h).has_value());
  }
}

// ---------------------------------------------------------------------------
// Discreteness: refine_colours on the canonical labelling's preimage is
// the identity partition refinement story — exercised indirectly above —
// and refine_colours itself must be relabelling-invariant as *numbers*.
// ---------------------------------------------------------------------------

TEST(CanonicalRefinement, ColourIdsAreRelabellingInvariant) {
  for (const std::uint64_t seed : seeds_under_test()) {
    Rng rng(seed);
    for (int c = 0; c < 20; ++c) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
      const Graph g = random_connected_graph(
          2 + static_cast<int>(rng.below(6)), 4, static_cast<int>(rng.below(4)),
          rng);
      const std::vector<int> perm = random_permutation(g.num_nodes(), rng);
      const Graph h = g.relabelled(perm);
      const RelationalStructure sg = structure_of(g);
      const RelationalStructure sh = structure_of(h);
      const std::vector<int> cg = refine_colours(sg, sg.colour);
      const std::vector<int> ch = refine_colours(sh, sh.colour);
      // Node v of g is node perm[v] of h: the refined colour *numbers*
      // must transport along the relabelling.
      for (int v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(cg[v], ch[perm[v]]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Automorphism-group sanity on known groups. canonical_form reports
// discovered generators; the brute-force count is the ground truth.
// ---------------------------------------------------------------------------

TEST(CanonicalAutomorphisms, CycleGroupsHaveOrder2n) {
  for (int n = 4; n <= 8; ++n) {
    SCOPED_TRACE("n=" + std::to_string(n));
    EXPECT_EQ(automorphism_count(cycle_graph(n)),
              static_cast<std::uint64_t>(2 * n));
  }
}

TEST(CanonicalAutomorphisms, CompleteBipartiteGroups) {
  // |Aut(K_{a,b})| = a! b! for a != b, doubled for a == b.
  EXPECT_EQ(automorphism_count(complete_bipartite(2, 3)), 2u * 6u);
  EXPECT_EQ(automorphism_count(complete_bipartite(3, 3)), 6u * 6u * 2u);
}

TEST(CanonicalAutomorphisms, DiscoveredGeneratorsAreGenuine) {
  // On symmetric graphs the search must discover at least one
  // non-trivial automorphism (certificate ties are unavoidable), and
  // every reported generator must verify.
  const Graph graphs[] = {cycle_graph(6), complete_bipartite(3, 3),
                          complete_graph(5), hypercube(3)};
  for (const Graph& g : graphs) {
    SCOPED_TRACE(g.to_string());
    const CanonicalForm cf = canonical_form(g);
    EXPECT_FALSE(cf.automorphisms.empty());
    const RelationalStructure s = structure_of(g);
    for (const auto& a : cf.automorphisms) {
      EXPECT_TRUE(is_structure_automorphism(s, a));
      EXPECT_TRUE(is_isomorphism(g, g, a));
    }
  }
}

TEST(CanonicalAutomorphisms, Fig9aGadgetGroupAndHubFixing) {
  // One 5-node gadget of the Figure 9a / class-G construction (k = 3):
  // K_4 minus an edge {d, e} plus an apex adjacent to d and e. Its
  // automorphism group has order 4 (swap d <-> e, swap the two K_4
  // nodes off the removed edge, independently).
  Graph gadget(5);
  // apex = 0; K4 nodes 1..4 with edge {3,4} removed; apex adj 3, 4.
  gadget.add_edge(1, 2);
  gadget.add_edge(1, 3);
  gadget.add_edge(1, 4);
  gadget.add_edge(2, 3);
  gadget.add_edge(2, 4);
  gadget.add_edge(0, 3);
  gadget.add_edge(0, 4);
  EXPECT_EQ(automorphism_count(gadget), 4u);

  // On the full 16-node fig9a graph: swapping two entire gadgets (the
  // construction places gadget gi at nodes 1+5*gi .. 5+5*gi) is an
  // automorphism, and every discovered automorphism fixes the hub 0 —
  // the unique node whose removal leaves three odd components.
  const Graph fig9a = fig9a_graph();
  ASSERT_EQ(fig9a.num_nodes(), 16);
  std::vector<NodeId> swap01(16);
  std::iota(swap01.begin(), swap01.end(), 0);
  for (int i = 0; i < 5; ++i) {
    swap01[1 + i] = 6 + i;
    swap01[6 + i] = 1 + i;
  }
  EXPECT_TRUE(is_isomorphism(fig9a, fig9a, swap01));

  const CanonicalForm cf = canonical_form(fig9a);
  for (const auto& a : cf.automorphisms) {
    EXPECT_TRUE(is_isomorphism(fig9a, fig9a, a));
    EXPECT_EQ(a[0], 0);
  }
}

// ---------------------------------------------------------------------------
// Kripke-specific completeness: the legacy refinement fingerprint can
// split an isomorphism class; the canonical fingerprint cannot. This is
// the strict-decrease witness for the quotient-search key upgrade.
// ---------------------------------------------------------------------------

TEST(CanonicalKripke, CanonicalKeyMergesWhatRefinementSplits) {
  // A 6-cycle view: all states share one refinement colour, so the
  // legacy fingerprint falls back to original-index order and two
  // rotated copies fingerprint apart — while being isomorphic.
  const Graph c6 = cycle_graph(6);
  const PortNumbering p = PortNumbering::identity(c6);
  const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);

  std::vector<int> rot(6);
  for (int v = 0; v < 6; ++v) rot[v] = (v + 1) % 6;
  // Rotate the underlying graph's numbering instead of the model
  // directly so the relabelled model is still a kripke_from_graph image.
  const KripkeModel m = canontest::relabelled_model(k, rot);

  EXPECT_EQ(model_fingerprint(k), model_fingerprint(m));
  EXPECT_TRUE(is_isomorphic(k, m));

  // The strict-decrease demonstration needs a pair the legacy key
  // splits. Rotation alone may not split it (ties broken by index can
  // coincide); a reflected relabelling of an asymmetric-profile model
  // does. Scan seeds until the legacy key splits a pair, then require
  // the canonical key to merge it. The scan is deterministic.
  bool witnessed = false;
  Rng rng(7);
  for (int c = 0; c < 200 && !witnessed; ++c) {
    const KripkeModel base = random_kripke_model(rng);
    const std::vector<int> perm = random_permutation(base.num_states(), rng);
    const KripkeModel relab = relabelled_model(base, perm);
    ASSERT_EQ(model_fingerprint(base), model_fingerprint(relab));
    if (refinement_fingerprint(base) != refinement_fingerprint(relab)) {
      witnessed = true;  // legacy key split an isomorphism class
    }
  }
  EXPECT_TRUE(witnessed)
      << "expected at least one pair the legacy refinement fingerprint "
         "splits; the canonical key merged every scanned pair";
}

TEST(CanonicalKripke, EmptyAndTrivialModels) {
  const KripkeModel empty(0, 0);
  EXPECT_EQ(canonical_certificate(empty), canonical_certificate(KripkeModel(0, 0)));

  KripkeModel one(1, 1);
  one.set_prop(1, 0);
  KripkeModel other(1, 1);
  EXPECT_NE(canonical_certificate(one), canonical_certificate(other));

  // Registered-but-empty relations are part of the signature.
  KripkeModel with_rel(2, 0);
  with_rel.ensure_relation(Modality{0, 0});
  const KripkeModel without_rel(2, 0);
  EXPECT_NE(canonical_certificate(with_rel), canonical_certificate(without_rel));
}

}  // namespace
}  // namespace wm
