// The lock-free dedup table under real concurrency.
//
// LockfreeMinMap is the engine under every dedup_scan (util/visitor.hpp),
// so its contract gets the full treatment: multi-worker hammer tests at 8
// and 16 threads (the TSan CI job runs this suite via the `parallel`
// label), fill-to-capacity and cooperative-growth paths, and a
// differential suite pinning its harvest byte-identical to the mutex-based
// ShardedMinMap on the same seeded insert multiset — the two tables must
// be indistinguishable observationally, whatever their internals.
// WM_SEED=<n> narrows the seeded sweeps to one seed.
#include "util/lockfree_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "support/diff_harness.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/sharded.hpp"

namespace wm {
namespace {

TEST(LockfreeMinMap, KeepsMinimumPerKeyUnderContention) {
  for (const int threads : {8, 16}) {
    LockfreeMinMap<int, std::uint64_t> table;
    ThreadPool pool(threads);
    pool.parallel_for(0, 10000, [&](std::uint64_t i) {
      table.insert_min(static_cast<int>(i % 17), i);
    });
    EXPECT_EQ(table.size(), 17u);
    std::vector<std::uint64_t> mins = table.values();
    std::sort(mins.begin(), mins.end());
    // Key k's minimum inserted value is k itself (first occurrence).
    ASSERT_EQ(mins.size(), 17u) << "threads=" << threads;
    for (std::size_t k = 0; k < mins.size(); ++k) EXPECT_EQ(mins[k], k);
  }
}

TEST(LockfreeMinMap, HammerManyDistinctKeysManyWorkers) {
  // Insert-heavy: every index is a fresh key, so the table grows (or
  // pre-sizes) through tens of thousands of CAS claims racing across
  // workers. Verifies no insert is lost and every value survives intact.
  constexpr std::uint64_t kKeys = 50000;
  for (const int threads : {8, 16}) {
    for (const std::size_t presize : {std::size_t{0}, std::size_t{kKeys}}) {
      LockfreeMinMap<std::uint64_t, std::uint64_t> table(presize);
      ThreadPool pool(threads);
      pool.parallel_for(0, kKeys, [&](std::uint64_t i) {
        table.insert_min(i * 2654435761ULL, i);
      });
      EXPECT_EQ(table.inserts(), kKeys);
      std::vector<std::uint64_t> got = table.values();
      EXPECT_EQ(got.size(), kKeys)
          << "threads=" << threads << " presize=" << presize;
      std::sort(got.begin(), got.end());
      for (std::uint64_t i = 0; i < kKeys; ++i) EXPECT_EQ(got[i], i);
    }
  }
}

TEST(LockfreeMinMap, HammerHitHeavyMix) {
  // Hit-heavy: 64 keys, 100k inserts — the CAS min-merge path under
  // maximal contention. The surviving minima must be exact.
  for (const int threads : {8, 16}) {
    LockfreeMinMap<std::string, std::uint64_t> table;
    ThreadPool pool(threads);
    pool.parallel_for(0, 100000, [&](std::uint64_t i) {
      table.insert_min("key-" + std::to_string(i % 64), i);
    });
    std::vector<std::uint64_t> mins = table.values();
    std::sort(mins.begin(), mins.end());
    ASSERT_EQ(mins.size(), 64u);
    for (std::size_t k = 0; k < mins.size(); ++k) EXPECT_EQ(mins[k], k);
  }
}

TEST(LockfreeMinMap, FillPreSizedToCapacityNeverGrows) {
  // A correct caller estimate means one segment, no growth, and hence no
  // cross-segment duplicates — the pre-sizing contract DESIGN.md sells.
  constexpr std::size_t kKeys = 3000;
  LockfreeMinMap<int, std::uint64_t> table(kKeys);
  ThreadPool pool(8);
  pool.parallel_for(0, kKeys, [&](std::uint64_t i) {
    table.insert_min(static_cast<int>(i), i);
  });
  EXPECT_EQ(table.segments(), 1u);
  EXPECT_EQ(table.size(), kKeys);
}

TEST(LockfreeMinMap, GrowthPathChainsSegmentsAndLosesNothing) {
  // Unsized table, far more keys than the minimum capacity: growth must
  // chain segments while older entries stay findable and new inserts of
  // old keys still merge to the minimum.
  constexpr std::uint64_t kKeys = 5000;
  LockfreeMinMap<std::uint64_t, std::uint64_t> table(0);
  ThreadPool pool(8);
  // Two passes over the same keys with different values: the second pass
  // must find the first pass's entries wherever growth left them.
  pool.parallel_for(0, kKeys * 2, [&](std::uint64_t i) {
    const std::uint64_t key = i % kKeys;
    table.insert_min(key, key + (i < kKeys ? 0 : 1000000));
  });
  EXPECT_GT(table.segments(), 1u);
  std::vector<std::uint64_t> mins = table.values();
  EXPECT_EQ(mins.size(), kKeys);
  std::sort(mins.begin(), mins.end());
  for (std::uint64_t k = 0; k < kKeys; ++k) EXPECT_EQ(mins[k], k);
}

TEST(LockfreeMinMap, SequentialFillToExactCapacityBoundary) {
  // Exactly max_load inserts into the smallest table: the load-factor
  // trip must hand off to a second segment, not loop or overfill.
  LockfreeMinMap<int, std::uint64_t> table;
  for (int i = 0; i < 64; ++i) {  // kMinCapacity = 64; max load = 48
    table.insert_min(i, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(table.size(), 64u);
  EXPECT_GE(table.segments(), 2u);
  std::vector<std::uint64_t> mins = table.values();
  std::sort(mins.begin(), mins.end());
  for (std::size_t k = 0; k < mins.size(); ++k) EXPECT_EQ(mins[k], k);
}

// --- Differential: lock-free vs sharded ------------------------------------

/// Canonical observable content of a dedup table: sorted (key, min) pairs.
template <typename Table>
std::vector<std::pair<std::uint64_t, std::uint64_t>> content_of(Table& table);

template <>
std::vector<std::pair<std::uint64_t, std::uint64_t>> content_of(
    LockfreeMinMap<std::uint64_t, std::uint64_t>& table) {
  auto pairs = table.harvest();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(LockfreeVsSharded, IdenticalContentOnSeededInsertMultisets) {
  // The replacement claim, executable: for the same insert multiset —
  // seeded-random keys and values, applied from 1/2/8-worker pools —
  // the lock-free table and the old mutex-sharded table must harvest
  // byte-identical (key, min) sets. WM_SEED=<n> reproduces one seed.
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    // Build the insert multiset deterministically up front so every
    // table and every thread count sees the same multiset.
    Rng rng(seed);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> inserts;
    const std::uint64_t keyspace = 1 + rng.below(400);
    for (int i = 0; i < 20000; ++i) {
      inserts.emplace_back(rng.below(keyspace), rng.next());
    }
    // Reference: the sharded table, filled sequentially.
    ShardedMinMap<std::uint64_t, std::uint64_t> sharded;
    for (const auto& [k, v] : inserts) sharded.insert_min(k, v);
    std::vector<std::uint64_t> expected_mins = sharded.values();
    std::sort(expected_mins.begin(), expected_mins.end());

    for (const int threads : {1, 2, 8}) {
      LockfreeMinMap<std::uint64_t, std::uint64_t> lockfree;
      ThreadPool pool(threads);
      pool.parallel_for(0, inserts.size(), [&](std::uint64_t i) {
        lockfree.insert_min(inserts[i].first, inserts[i].second);
      });
      const auto pairs = content_of(lockfree);
      std::vector<std::uint64_t> mins;
      for (const auto& [k, v] : pairs) mins.push_back(v);
      std::sort(mins.begin(), mins.end());
      EXPECT_EQ(mins, expected_mins)
          << "lock-free diverged from sharded at threads=" << threads
          << " — reproduce with WM_SEED=" << seed;
      EXPECT_EQ(pairs.size(), sharded.size());
    }
  }
}

#ifndef WM_OBS_DISABLED
TEST(LockfreeMinMap, HarvestCountersAreThreadCountInvariant) {
  // dedup.fresh_keys / dedup.dedup_hits are *work* counters: the gate in
  // tools/bench_diff.py compares them across thread counts with --exact,
  // so they must be a pure function of the insert multiset. Harvest-time
  // counting makes that hold even when a grow race files one key in two
  // segments.
  auto run = [](int threads) {
    const auto before = obs::registry().snapshot(obs::CounterKind::kWork);
    {
      LockfreeMinMap<std::uint64_t, std::uint64_t> table;
      ThreadPool pool(threads);
      pool.parallel_for(0, 30000, [&](std::uint64_t i) {
        table.insert_min(i % 333, i);
      });
      (void)table.values();
    }
    const auto after = obs::registry().snapshot(obs::CounterKind::kWork);
    const auto delta = [&](const char* name) {
      const auto b = before.find(name);
      const auto a = after.find(name);
      return (a == after.end() ? 0 : a->second) -
             (b == before.end() ? 0 : b->second);
    };
    return std::pair<std::uint64_t, std::uint64_t>{delta("dedup.fresh_keys"),
                                                   delta("dedup.dedup_hits")};
  };
  const auto reference = run(1);
  EXPECT_EQ(reference.first, 333u);
  EXPECT_EQ(reference.second, 30000u - 333u);
  EXPECT_EQ(run(8), reference);
  EXPECT_EQ(run(16), reference);
}

TEST(LockfreeMinMap, CountersEmitOnceAcrossRepeatedHarvests) {
  const auto before = obs::registry().snapshot(obs::CounterKind::kWork);
  LockfreeMinMap<int, std::uint64_t> table;
  table.insert_min(1, 10);
  table.insert_min(1, 5);
  table.insert_min(2, 7);
  (void)table.values();
  (void)table.values();
  (void)table.harvest();
  const auto after = obs::registry().snapshot(obs::CounterKind::kWork);
  const auto b_fresh = before.find("dedup.fresh_keys");
  EXPECT_EQ(after.at("dedup.fresh_keys") -
                (b_fresh == before.end() ? 0 : b_fresh->second),
            2u);
  const auto b_hits = before.find("dedup.dedup_hits");
  EXPECT_EQ(after.at("dedup.dedup_hits") -
                (b_hits == before.end() ? 0 : b_hits->second),
            1u);
}
#endif

}  // namespace
}  // namespace wm
