#include "bisim/definability.hpp"

namespace wm {

namespace {

using Family = std::set<std::vector<bool>>;

void guard(const Family& family, std::size_t max_sets) {
  if (family.size() > max_sets) {
    throw DefinabilityBudgetError("definable_sets: family exceeds the budget");
  }
}

/// Closes the family under complement and pairwise intersection (hence,
/// with De Morgan, under all Boolean combinations).
void boolean_closure(Family& family, std::size_t max_sets) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::vector<bool>> snapshot(family.begin(), family.end());
    for (const auto& s : snapshot) {
      std::vector<bool> neg(s.size());
      for (std::size_t i = 0; i < s.size(); ++i) neg[i] = !s[i];
      changed |= family.insert(std::move(neg)).second;
    }
    guard(family, max_sets);
    snapshot.assign(family.begin(), family.end());
    for (std::size_t a = 0; a < snapshot.size(); ++a) {
      for (std::size_t b = a + 1; b < snapshot.size(); ++b) {
        std::vector<bool> inter(snapshot[a].size());
        for (std::size_t i = 0; i < inter.size(); ++i) {
          inter[i] = snapshot[a][i] && snapshot[b][i];
        }
        changed |= family.insert(std::move(inter)).second;
      }
      guard(family, max_sets);
    }
  }
}

/// ||<alpha>_{>=g} S||: states with at least g alpha-successors in S.
std::vector<bool> diamond_preimage(const KripkeModel& k, const Modality& alpha,
                                   const std::vector<bool>& s, int grade) {
  std::vector<bool> out(s.size(), false);
  for (int v = 0; v < k.num_states(); ++v) {
    int count = 0;
    for (int w : k.successors(alpha, v)) {
      if (s[w] && ++count >= grade) break;
    }
    out[v] = count >= grade;
  }
  return out;
}

}  // namespace

std::set<std::vector<bool>> definable_sets(const KripkeModel& k, int depth,
                                           bool graded, std::size_t max_sets) {
  const int n = k.num_states();
  Family family;
  family.insert(std::vector<bool>(static_cast<std::size_t>(n), true));   // T
  family.insert(std::vector<bool>(static_cast<std::size_t>(n), false));  // F
  for (int q = 1; q <= k.num_props(); ++q) {
    std::vector<bool> atom(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) atom[v] = k.prop_holds(q, v);
    family.insert(std::move(atom));
  }
  boolean_closure(family, max_sets);

  // Max useful grade per modality: the largest out-degree.
  const auto modalities = k.modalities();
  std::vector<int> max_grade(modalities.size(), 1);
  for (std::size_t a = 0; a < modalities.size(); ++a) {
    for (int v = 0; v < n; ++v) {
      max_grade[a] = std::max(
          max_grade[a],
          static_cast<int>(k.successors(modalities[a], v).size()));
    }
  }

  for (int t = 0; depth < 0 || t < depth; ++t) {
    Family next = family;
    for (const auto& s : family) {
      for (std::size_t a = 0; a < modalities.size(); ++a) {
        const int top = graded ? max_grade[a] : 1;
        for (int g = 1; g <= top; ++g) {
          next.insert(diamond_preimage(k, modalities[a], s, g));
        }
      }
      guard(next, max_sets);
    }
    boolean_closure(next, max_sets);
    if (next == family) break;  // fixpoint
    family = std::move(next);
  }
  return family;
}

std::set<std::vector<bool>> unions_of_blocks(const Partition& p, int num_states,
                                             std::size_t max_sets) {
  if (p.num_blocks > 30 ||
      (1ull << p.num_blocks) > max_sets) {
    throw DefinabilityBudgetError("unions_of_blocks: too many blocks");
  }
  Family family;
  for (std::uint64_t mask = 0; mask < (1ull << p.num_blocks); ++mask) {
    std::vector<bool> s(static_cast<std::size_t>(num_states));
    for (int v = 0; v < num_states; ++v) {
      s[v] = (mask >> p.block[v]) & 1;
    }
    family.insert(std::move(s));
  }
  return family;
}

}  // namespace wm
