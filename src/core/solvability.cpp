#include "core/solvability.hpp"

#include <limits>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/visitor.hpp"

namespace wm {

ScopedInstance instance_for(const Problem& problem, PortNumbering numbering,
                            ThreadPool* pool, const CancelToken* cancel) {
  WM_TRACE_SCOPE("solvability.instance");
  WM_TIME_SCOPE("solvability.instance");
  WM_COUNT(solvability.instances);
  ScopedInstance inst;
  const Graph& g = numbering.graph();
  std::optional<std::vector<int>> unique;
  if (pool != nullptr) {
    const auto space = output_space_size(problem, g);
    if (!space) {
      throw std::invalid_argument(
          "instance_for: output space too large to scan");
    }
    // Chunk-ordered reduction to (lowest valid index, number of valid
    // outputs): a pure function of the output space, so the scan agrees
    // with the sequential odometer at any thread count.
    constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();
    struct Acc {
      std::uint64_t first = std::numeric_limits<std::uint64_t>::max();
      std::uint64_t count = 0;
    };
    const Acc acc = ParallelVisitor(pool).reduce<Acc>(
        *space, Acc{},
        [&](std::uint64_t i) -> Acc {
          const std::vector<int> out = output_for_index(problem, g, i);
          if (problem.valid(g, out)) return Acc{i, 1};
          return Acc{kNone, 0};
        },
        [](Acc a, Acc b) {
          return Acc{a.first < b.first ? a.first : b.first,
                     a.count + b.count};
        });
    if (acc.count > 1) {
      throw std::invalid_argument(
          "instance_for: problem has multiple valid solutions on this graph");
    }
    if (acc.count == 1) unique = output_for_index(problem, g, acc.first);
    WM_COUNT_ADD(solvability.outputs_scanned, *space);
  } else {
    std::uint64_t scanned = 0;
    for_each_output(problem, g, [&](const std::vector<int>& out) {
      ++scanned;
      if ((scanned & 1023) == 0) poll_cancel(cancel);
      if (problem.valid(g, out)) {
        if (unique) {
          throw std::invalid_argument(
              "instance_for: problem has multiple valid solutions on this "
              "graph");
        }
        unique = out;
      }
      return true;
    });
    WM_COUNT_ADD(solvability.outputs_scanned, scanned);
  }
  if (!unique) {
    throw std::invalid_argument("instance_for: problem has no valid solution");
  }
  inst.numbering = std::move(numbering);
  inst.target = std::move(*unique);
  return inst;
}

SolvabilityReport analyse_solvability(const std::vector<ScopedInstance>& scope,
                                      ProblemClass c, int delta,
                                      int max_rounds, ThreadPool* pool,
                                      const CancelToken* cancel) {
  WM_TRACE_SCOPE("solvability.analyse");
  WM_TIME_SCOPE("solvability.analyse");
  WM_COUNT(solvability.analyses);
  const Variant variant = kripke_variant_for(c);
  // Multiset classes see multiplicities: graded refinement. Set classes
  // and Vector classes use ungraded refinement — Vector's extra per-port
  // structure is already encoded in the (i, j)-indexed relations.
  const bool graded = graded_logic_for(c);

  // Joint model + flattened targets.
  KripkeModel joint(0, 0);
  std::vector<int> target;
  for (const ScopedInstance& inst : scope) {
    const KripkeModel k = kripke_from_graph(inst.numbering, variant, delta);
    joint = KripkeModel::disjoint_union(joint, k);
    target.insert(target.end(), inst.target.begin(), inst.target.end());
  }

  auto partition_at = [&](int t) {
    poll_cancel(cancel);
    return graded ? coarsest_graded_bisimulation(joint, t)
                  : coarsest_bisimulation(joint, t);
  };
  auto monochromatic = [&](const Partition& p) {
    std::vector<int> colour(static_cast<std::size_t>(p.num_blocks), -1);
    for (int v = 0; v < joint.num_states(); ++v) {
      int& c2 = colour[p.block[v]];
      if (c2 < 0) {
        c2 = target[v];
      } else if (c2 != target[v]) {
        return false;
      }
    }
    return true;
  };

  SolvabilityReport report;
  // The t-step refinements are independent recomputations; both scans
  // are lowest-witness searches, so the report is deterministic. The
  // monochromatic search range never probes beyond the fixpoint round
  // (nor beyond the cap).
  ParallelVisitor visitor(pool);
  const auto fix = visitor.find_first(
      1, static_cast<std::uint64_t>(max_rounds) + 1, [&](std::uint64_t t) {
        const int ti = static_cast<int>(t);
        return partition_at(ti).num_blocks == partition_at(ti - 1).num_blocks;
      });
  int mono_cap;  // inclusive upper bound for the min_rounds search
  if (fix) {
    const int t_fix = static_cast<int>(*fix);
    report.fixpoint_rounds = t_fix - 1;
    report.blocks = partition_at(t_fix).num_blocks;
    mono_cap = t_fix;
  } else {
    const Partition p = graded ? coarsest_graded_bisimulation(joint)
                               : coarsest_bisimulation(joint);
    report.fixpoint_rounds = p.rounds;
    report.blocks = p.num_blocks;
    mono_cap = max_rounds;
  }
  const auto mono = visitor.find_first(
      0, static_cast<std::uint64_t>(mono_cap) + 1, [&](std::uint64_t t) {
        return monochromatic(partition_at(static_cast<int>(t)));
      });
  if (mono) report.min_rounds = static_cast<int>(*mono);
  WM_COUNT_ADD(solvability.fixpoint_rounds, report.fixpoint_rounds);
  WM_COUNT_ADD(solvability.blocks, report.blocks);
  return report;
}

}  // namespace wm
