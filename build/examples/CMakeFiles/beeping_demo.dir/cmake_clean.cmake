file(REMOVE_RECURSE
  "CMakeFiles/beeping_demo.dir/beeping_demo.cpp.o"
  "CMakeFiles/beeping_demo.dir/beeping_demo.cpp.o.d"
  "beeping_demo"
  "beeping_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beeping_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
