#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json files and gate on work-counter regressions.

The benches emit a "metrics" object with two counter families:

  * "work"  -- deterministic work counters. Identical across thread counts
               by construction, so any increase between two builds of the
               same bench is a genuine algorithmic regression (more
               assignments scanned, more refinement rounds, ...), not
               scheduling noise. These are gated.
  * "info"  -- scheduling telemetry (steals, idle wakeups, ...). Varies run
               to run; never gated, never reported.

Wall-clock ("wall_ms") is reported but never gated: CI machines are too
noisy for time thresholds, which is exactly why the work counters exist.

Usage:
  bench_diff.py [--threshold PCT] [--exact] BASELINE_DIR CURRENT_DIR
  bench_diff.py --self-test

Exit status: 0 = no regressions, 1 = regression (or missing bench/counter),
2 = bad invocation or unreadable input.

Rules, per bench file present in BASELINE_DIR:
  * bench json missing from CURRENT_DIR ............ FAIL (coverage lost)
  * work counter missing from current .............. FAIL (instrumentation
                                                     silently dropped)
  * work counter grew beyond threshold ............. FAIL (default 5%; a
                                                     baseline of 0 fails on
                                                     any growth)
  * work counter shrank, or is new in current ...... informational only
  * --exact: any work-counter difference at all .... FAIL (used by CI to
             assert cross-thread-count determinism of the same build)
"""

import argparse
import glob
import json
import os
import sys
import tempfile


def load_bench(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    work = data.get("metrics", {}).get("work")
    if not isinstance(work, dict):
        raise SystemExit(f"bench_diff: {path} has no metrics.work object")
    return data


def collect(dirname):
    paths = sorted(glob.glob(os.path.join(dirname, "BENCH_*.json")))
    return {os.path.basename(p): load_bench(p) for p in paths}


def diff_sets(baseline, current, threshold, exact):
    """Returns (failures, notes) as lists of human-readable lines."""
    failures = []
    notes = []
    for fname in sorted(baseline):
        base = baseline[fname]
        name = base.get("name", fname)
        if fname not in current:
            failures.append(f"{name}: bench json missing from current set")
            continue
        cur = current[fname]
        bwork = base["metrics"]["work"]
        cwork = cur["metrics"]["work"]
        for key in sorted(bwork):
            bval = bwork[key]
            if key not in cwork:
                failures.append(
                    f"{name}: work counter '{key}' missing from current "
                    f"(baseline {bval})")
                continue
            cval = cwork[key]
            if exact:
                if cval != bval:
                    failures.append(
                        f"{name}: '{key}' differs ({bval} -> {cval})")
                continue
            limit = bval * (1.0 + threshold / 100.0)
            if cval > limit:
                pct = (100.0 * (cval - bval) / bval) if bval else float("inf")
                failures.append(
                    f"{name}: '{key}' regressed {bval} -> {cval} "
                    f"(+{pct:.1f}%, threshold {threshold:.1f}%)")
            elif cval < bval:
                notes.append(f"{name}: '{key}' improved {bval} -> {cval}")
        for key in sorted(set(cwork) - set(bwork)):
            if exact:
                failures.append(
                    f"{name}: '{key}' differs (absent -> {cwork[key]})")
            else:
                notes.append(f"{name}: new work counter '{key}' = {cwork[key]}")
        bms, cms = base.get("wall_ms"), cur.get("wall_ms")
        if isinstance(bms, (int, float)) and isinstance(cms, (int, float)):
            notes.append(
                f"{name}: wall_ms {bms:.1f} -> {cms:.1f} (informational)")
    for fname in sorted(set(current) - set(baseline)):
        notes.append(f"{current[fname].get('name', fname)}: new bench "
                     f"(no baseline)")
    return failures, notes


def run_diff(args):
    baseline = collect(args.baseline)
    current = collect(args.current)
    if not baseline:
        raise SystemExit(f"bench_diff: no BENCH_*.json under {args.baseline}")
    failures, notes = diff_sets(baseline, current, args.threshold, args.exact)
    for line in notes:
        print(f"  note: {line}")
    for line in failures:
        print(f"  FAIL: {line}")
    if failures:
        print(f"bench_diff: {len(failures)} regression(s) across "
              f"{len(baseline)} baseline bench(es)")
        return 1
    print(f"bench_diff: OK ({len(baseline)} bench(es), "
          f"threshold {'exact' if args.exact else f'{args.threshold:.1f}%'})")
    return 0


def self_test():
    """Exercises the gate on synthetic data; exits non-zero if any rule
    misfires. CI runs this so the gate itself is covered by the gate job."""

    def write_set(root, sub, work, wall=10.0):
        d = os.path.join(root, sub)
        os.makedirs(d, exist_ok=True)
        with open(os.path.join(d, "BENCH_fake.json"), "w") as f:
            json.dump({"name": "fake", "n": 4, "threads": 2, "wall_ms": wall,
                       "graphs_per_sec": 0.0,
                       "metrics": {"work": work, "info": {"pool.tasks": 3}}},
                      f)
        return d

    class A:
        threshold = 5.0
        exact = False

    checks = []
    with tempfile.TemporaryDirectory() as tmp:
        a = A()
        a.baseline = write_set(tmp, "base", {"engine.rounds": 100,
                                             "decision.blocks": 40})
        # Identical -> pass.
        a.current = write_set(tmp, "same", {"engine.rounds": 100,
                                            "decision.blocks": 40})
        checks.append(("identical sets pass", run_diff(a) == 0))
        # Within threshold -> pass; wall-time doubling is ignored.
        a.current = write_set(tmp, "near", {"engine.rounds": 104,
                                            "decision.blocks": 40}, wall=99.0)
        checks.append(("4% growth within 5% passes", run_diff(a) == 0))
        # Beyond threshold -> fail.
        a.current = write_set(tmp, "slow", {"engine.rounds": 120,
                                            "decision.blocks": 40})
        checks.append(("20% growth fails", run_diff(a) == 1))
        # Dropped counter -> fail.
        a.current = write_set(tmp, "drop", {"engine.rounds": 100})
        checks.append(("dropped counter fails", run_diff(a) == 1))
        # Improvement and new counter -> pass.
        a.current = write_set(tmp, "wins", {"engine.rounds": 50,
                                            "decision.blocks": 40,
                                            "bisim.refinements": 7})
        checks.append(("improvement passes", run_diff(a) == 0))
        # Exact mode: the same improvement must now fail.
        a.exact = True
        checks.append(("exact mode flags any difference", run_diff(a) == 1))
        a.current = write_set(tmp, "same2", {"engine.rounds": 100,
                                             "decision.blocks": 40})
        checks.append(("exact mode passes identical", run_diff(a) == 0))
        # Missing bench file -> fail.
        a.exact = False
        empty = os.path.join(tmp, "empty")
        os.makedirs(empty)
        a.current = empty
        checks.append(("missing bench json fails", run_diff(a) == 1))

    bad = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"self-test: {'ok  ' if ok else 'FAIL'} {label}")
    if bad:
        print(f"bench_diff --self-test: {len(bad)} rule(s) misfired")
        return 1
    print(f"bench_diff --self-test: all {len(checks)} rules behave")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description="Gate BENCH_*.json work counters against a baseline set.")
    ap.add_argument("baseline", nargs="?",
                    help="directory holding baseline BENCH_*.json files")
    ap.add_argument("current", nargs="?",
                    help="directory holding freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=5.0, metavar="PCT",
                    help="allowed work-counter growth in percent (default 5)")
    ap.add_argument("--exact", action="store_true",
                    help="fail on ANY work-counter difference "
                         "(cross-thread determinism check)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate's own rules on synthetic data")
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current directories are required "
                 "(or use --self-test)")
    return run_diff(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
