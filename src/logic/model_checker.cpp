#include "logic/model_checker.hpp"

#include <unordered_map>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace wm {

namespace {

std::vector<bool> eval(const KripkeModel& k, const Formula& f,
                       std::unordered_map<Formula, std::vector<bool>>* memo) {
  WM_COUNT(modelcheck.evals);
  if (memo) {
    auto it = memo->find(f);
    if (it != memo->end()) {
      WM_COUNT(modelcheck.memo_hits);
      return it->second;
    }
  }
  const int n = k.num_states();
  std::vector<bool> out(static_cast<std::size_t>(n), false);
  switch (f.kind()) {
    case Formula::Kind::True:
      out.assign(static_cast<std::size_t>(n), true);
      break;
    case Formula::Kind::False:
      break;
    case Formula::Kind::Prop: {
      const int q = f.prop_id();
      if (q <= k.num_props()) {
        for (int v = 0; v < n; ++v) out[v] = k.prop_holds(q, v);
      }
      break;
    }
    case Formula::Kind::Not: {
      auto c = eval(k, f.child(), memo);
      for (int v = 0; v < n; ++v) out[v] = !c[v];
      break;
    }
    case Formula::Kind::And: {
      auto a = eval(k, f.child(0), memo);
      auto b = eval(k, f.child(1), memo);
      for (int v = 0; v < n; ++v) out[v] = a[v] && b[v];
      break;
    }
    case Formula::Kind::Or: {
      auto a = eval(k, f.child(0), memo);
      auto b = eval(k, f.child(1), memo);
      for (int v = 0; v < n; ++v) out[v] = a[v] || b[v];
      break;
    }
    case Formula::Kind::Diamond: {
      auto c = eval(k, f.child(), memo);
      const int need = f.grade();
      for (int v = 0; v < n; ++v) {
        int cnt = 0;
        for (int w : k.successors(f.modality(), v)) {
          if (c[w] && ++cnt >= need) break;
        }
        out[v] = cnt >= need;
      }
      break;
    }
    case Formula::Kind::Box: {
      auto c = eval(k, f.child(), memo);
      for (int v = 0; v < n; ++v) {
        bool all = true;
        for (int w : k.successors(f.modality(), v)) {
          if (!c[w]) {
            all = false;
            break;
          }
        }
        out[v] = all;
      }
      break;
    }
  }
  if (memo) memo->emplace(f, out);
  return out;
}

}  // namespace

std::vector<bool> model_check(const KripkeModel& k, const Formula& phi) {
  WM_TIME_SCOPE("modelcheck.check");
  WM_COUNT(modelcheck.checks);
  std::unordered_map<Formula, std::vector<bool>> memo;
  return eval(k, phi, &memo);
}

bool model_check_at(const KripkeModel& k, const Formula& phi, int state) {
  return model_check(k, phi)[static_cast<std::size_t>(state)];
}

std::vector<bool> model_check_naive(const KripkeModel& k, const Formula& phi) {
  return eval(k, phi, nullptr);
}

}  // namespace wm
