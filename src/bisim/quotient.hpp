// Quotients of Kripke models by bisimulation equivalences — canonical
// minimal models.
//
// For an (ungraded) bisimulation partition P of K, the quotient K/P has
// the blocks as states, a block satisfying q iff its members do (B1
// guarantees uniformity) and an alpha-edge B -> C iff some member of B
// has an alpha-successor in C (by B2/B3 then every member does, up to
// the block). Every ML/MML formula has the same truth value at v in K
// and at [v] in K/P — property-tested against the model checker.
//
// (The graded analogue needs multiplicity-annotated edges and is not
// provided; graded queries should be evaluated on the original model.)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bisim/bisimulation.hpp"
#include "logic/kripke.hpp"

namespace wm {

class ThreadPool;

/// The quotient K / p. Precondition: p is a bisimulation partition of k
/// (e.g. from coarsest_bisimulation) — verified with
/// verify_bisimulation_partition in debug contexts by the caller.
KripkeModel quotient_model(const KripkeModel& k, const Partition& p);

/// Convenience: quotient by the coarsest bisimulation.
KripkeModel minimise(const KripkeModel& k);

/// Graded quotient: like quotient_model, but the alpha-edge B -> C is
/// added with multiplicity = |alpha-successors in C| of any member of B
/// (uniform when p is a GRADED bisimulation partition). Parallel edges
/// make the graded model checker count correctly, so GML/GMML formulas
/// survive the quotient — property-tested.
KripkeModel graded_quotient_model(const KripkeModel& k, const Partition& p);

/// Convenience: graded quotient by the coarsest graded bisimulation.
KripkeModel minimise_graded(const KripkeModel& k);

// --- Quotient search --------------------------------------------------------

/// COMPLETE isomorphism key of a Kripke model: the canonical-form
/// certificate of graph/canonical.hpp (individualisation–refinement).
/// Equal fingerprints ⟺ isomorphic models — both directions hold, so
/// deduplicating by this key counts isomorphism classes exactly, even
/// for highly symmetric models. (The PR-2 key, kept below as
/// refinement_fingerprint, only guaranteed the ⇒ direction.)
std::string model_fingerprint(const KripkeModel& k);

/// The legacy PR-2 fingerprint: states relabelled by a modality-aware
/// colour-refinement order (ties broken by original index) and the model
/// serialised under that order. Sound (equal ⇒ isomorphic) but
/// incomplete: symmetric isomorphic models can fingerprint apart. Kept
/// as the reference point for the metamorphic tests, which pin that the
/// canonical key never yields MORE classes than this one.
std::string refinement_fingerprint(const KripkeModel& k);

struct QuotientSearchResult {
  /// Lowest input index per isomorphism class of minimal models (the
  /// complete model_fingerprint key), in increasing index order — the
  /// representative the sequential scan encounters first.
  std::vector<std::uint64_t> representatives;
  /// The minimised model of each representative, same order.
  std::vector<KripkeModel> models;
  /// Inputs scanned (always `count`; the discovery pass never stops
  /// early).
  std::uint64_t scanned = 0;
};

/// Scans the indexed model family build(i), i in [0, count): minimises
/// each model (graded quotient if `graded`), dedups by the complete
/// model_fingerprint key — so the result counts isomorphism classes of
/// minimal models EXACTLY, not refinement classes — and returns the
/// distinct minimal models, each tagged with the lowest index producing
/// it. This is the search behind the Lemma 14/15 bisimulation
/// separations: "how many genuinely different minimal views does this
/// family of port numberings admit?".
///
/// With a pool, discovery (minimise + canonicalise per candidate) runs
/// in parallel into a sharded fingerprint -> minimum-index table (same
/// pattern as the parallel graph enumeration); the per-key minimum is
/// timing-independent, so representatives — and the replayed models —
/// are byte-identical at any thread count. Counts are additionally
/// invariant under relabelling the input models (the key is canonical).
/// build must be safe to call concurrently for distinct indices.
QuotientSearchResult search_distinct_quotients(
    std::uint64_t count,
    const std::function<KripkeModel(std::uint64_t)>& build, bool graded = false,
    ThreadPool* pool = nullptr);

}  // namespace wm
