#include "core/solvability.hpp"

#include <stdexcept>

namespace wm {

ScopedInstance instance_for(const Problem& problem, PortNumbering numbering) {
  ScopedInstance inst;
  const Graph& g = numbering.graph();
  std::optional<std::vector<int>> unique;
  for_each_output(problem, g, [&](const std::vector<int>& out) {
    if (problem.valid(g, out)) {
      if (unique) {
        throw std::invalid_argument(
            "instance_for: problem has multiple valid solutions on this graph");
      }
      unique = out;
    }
    return true;
  });
  if (!unique) {
    throw std::invalid_argument("instance_for: problem has no valid solution");
  }
  inst.numbering = std::move(numbering);
  inst.target = std::move(*unique);
  return inst;
}

SolvabilityReport analyse_solvability(const std::vector<ScopedInstance>& scope,
                                      ProblemClass c, int delta,
                                      int max_rounds) {
  const Variant variant = kripke_variant_for(c);
  // Multiset classes see multiplicities: graded refinement. Set classes
  // and Vector classes use ungraded refinement — Vector's extra per-port
  // structure is already encoded in the (i, j)-indexed relations.
  const bool graded = graded_logic_for(c);

  // Joint model + flattened targets.
  KripkeModel joint(0, 0);
  std::vector<int> target;
  for (const ScopedInstance& inst : scope) {
    const KripkeModel k = kripke_from_graph(inst.numbering, variant, delta);
    joint = KripkeModel::disjoint_union(joint, k);
    target.insert(target.end(), inst.target.begin(), inst.target.end());
  }

  auto monochromatic = [&](const Partition& p) {
    std::vector<int> colour(static_cast<std::size_t>(p.num_blocks), -1);
    for (int v = 0; v < joint.num_states(); ++v) {
      int& c2 = colour[p.block[v]];
      if (c2 < 0) {
        c2 = target[v];
      } else if (c2 != target[v]) {
        return false;
      }
    }
    return true;
  };

  SolvabilityReport report;
  int prev_blocks = -1;
  for (int t = 0; t <= max_rounds; ++t) {
    const Partition p = graded ? coarsest_graded_bisimulation(joint, t)
                               : coarsest_bisimulation(joint, t);
    if (!report.min_rounds && monochromatic(p)) report.min_rounds = t;
    if (p.num_blocks == prev_blocks) {
      report.fixpoint_rounds = t - 1;
      report.blocks = p.num_blocks;
      return report;
    }
    prev_blocks = p.num_blocks;
  }
  const Partition p = graded ? coarsest_graded_bisimulation(joint)
                             : coarsest_bisimulation(joint);
  report.fixpoint_rounds = p.rounds;
  report.blocks = p.num_blocks;
  return report;
}

}  // namespace wm
