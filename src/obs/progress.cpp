#include "obs/progress.hpp"

#if !defined(WM_OBS_DISABLED)

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/counters.hpp"

namespace wm::obs {

namespace {

struct ProgressState {
  std::mutex mu;
  std::condition_variable cv;        // wakes the heartbeat early on stop
  std::vector<ProgressTask*> tasks;  // registration order
  std::thread heartbeat;
  bool running = false;  // heartbeat thread live (guarded by mu)
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_launches{0};

ProgressState& state() {
  // Leaked: ProgressTask destructors may run during static destruction.
  static ProgressState* s = new ProgressState();
  return *s;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

struct ProgressTaskAccess {
  static void print_line(const ProgressTask& t, bool final_line) {
    const std::uint64_t done = t.done();
    const double secs = seconds_since(t.start_);
    const double rate = secs > 0 ? static_cast<double>(done) / secs : 0;
    if (final_line) {
      std::fprintf(stderr, "[progress] %s done %llu/%llu in %.1fs (%.0f/s)\n",
                   t.name_.c_str(), static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(t.total_), secs, rate);
      return;
    }
    if (t.total_ > 0 && rate > 0) {
      const double pct =
          100.0 * static_cast<double>(done) / static_cast<double>(t.total_);
      const std::uint64_t left = t.total_ > done ? t.total_ - done : 0;
      std::fprintf(stderr,
                   "[progress] %s %llu/%llu (%.1f%%) %.0f/s eta %.1fs\n",
                   t.name_.c_str(), static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(t.total_), pct, rate,
                   static_cast<double>(left) / rate);
    } else {
      std::fprintf(stderr, "[progress] %s %llu done %.0f/s\n", t.name_.c_str(),
                   static_cast<unsigned long long>(done), rate);
    }
  }
};

namespace {

void print_counter_snapshot() {
  const auto work = registry().snapshot(CounterKind::kWork);
  std::string line;
  for (const auto& [name, value] : work) {
    if (value == 0) continue;
    if (!line.empty()) line += ' ';
    line += name;
    line += '=';
    line += std::to_string(value);
  }
  if (!line.empty()) {
    std::fprintf(stderr, "[progress] counters: %s\n", line.c_str());
  }
}

void heartbeat_loop(double interval_secs) {
  ProgressState& s = state();
  std::unique_lock<std::mutex> lock(s.mu);
  while (s.running) {
    s.cv.wait_for(lock,
                  std::chrono::duration<double>(interval_secs),
                  [&] { return !s.running; });
    if (!s.running) break;
    for (const ProgressTask* t : s.tasks) {
      ProgressTaskAccess::print_line(*t, /*final_line=*/false);
    }
    if (!s.tasks.empty()) print_counter_snapshot();
  }
}

}  // namespace

bool progress_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void progress_start(double interval_secs) {
  if (interval_secs < 0.01) interval_secs = 0.01;
  ProgressState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.running) return;
  s.running = true;
  g_enabled.store(true, std::memory_order_relaxed);
  g_launches.fetch_add(1, std::memory_order_relaxed);
  s.heartbeat = std::thread(heartbeat_loop, interval_secs);
}

std::uint64_t progress_heartbeat_launches() noexcept {
  return g_launches.load(std::memory_order_relaxed);
}

void progress_stop() {
  ProgressState& s = state();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.running) return;
    s.running = false;
    g_enabled.store(false, std::memory_order_relaxed);
    worker = std::move(s.heartbeat);
  }
  s.cv.notify_all();
  if (worker.joinable()) worker.join();
}

void progress_init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* value = std::getenv("WM_PROGRESS");
    if (value == nullptr || *value == '\0') return;
    const double secs = std::atof(value);
    if (secs <= 0) return;
    progress_start(secs);
    std::atexit([] { progress_stop(); });
  });
}

ProgressTask::ProgressTask(std::string_view name, std::uint64_t total) noexcept
    : name_(name), total_(total), start_(std::chrono::steady_clock::now()) {
  ProgressState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.tasks.push_back(this);
}

ProgressTask::~ProgressTask() {
  ProgressState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto it = s.tasks.begin(); it != s.tasks.end(); ++it) {
    if (*it == this) {
      s.tasks.erase(it);
      break;
    }
  }
  // The "done" line only when someone opted into heartbeats; the
  // default run stays byte-silent.
  if (s.running) ProgressTaskAccess::print_line(*this, /*final_line=*/true);
}

}  // namespace wm::obs

#endif  // WM_OBS_DISABLED
