// Distributed state machines (Section 1.1) and the algorithm classes
// Vector / Multiset / Set / Broadcast (Section 1.5).
//
// A machine A_Delta = (Y, Z, z0, M, m0, mu, delta) is modelled with
// `Value`-typed states and messages; the stopping set Y is identified by
// the `is_stopping` predicate, m0 is `Value::unit()`.
//
// The algebraic class is *enforced by the engine*, not trusted:
//   - Multiset machines receive `multiset(a)` (a canonical MSet value),
//   - Set machines receive `set(a)` (a canonical Set value),
//   - Broadcast machines have mu evaluated once per round and the result
//     replicated to all ports.
// so a machine in a weak class cannot observe information its class
// forbids, by construction.
//
// Deviation from the paper's notation: the paper pads the inbox to length
// Delta with copies of m0. Since z0 gives every node its own degree, the
// padding carries no information (its content and multiplicity are
// functions of deg(v) and Delta); we pass exactly deg(v) messages.
//
// Concurrency contract: init / is_stopping / message / transition are
// *pure observers* — implementations must not mutate shared state (not
// even through `mutable` caches unless internally synchronised). The
// parallel search substrate executes a single machine object on many
// graphs concurrently and relies on this; all machines in this library
// (including the Theorem 4/8/9 transformer wrappers) satisfy it.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "util/value.hpp"

namespace wm {

enum class ReceiveMode { Vector, Multiset, Set };
enum class SendMode { Ported, Broadcast };

/// Which of the paper's algorithm classes a machine lives in.
struct AlgebraicClass {
  ReceiveMode receive = ReceiveMode::Vector;
  SendMode send = SendMode::Ported;

  friend bool operator==(const AlgebraicClass&, const AlgebraicClass&) = default;

  static constexpr AlgebraicClass vector() { return {ReceiveMode::Vector, SendMode::Ported}; }
  static constexpr AlgebraicClass multiset() { return {ReceiveMode::Multiset, SendMode::Ported}; }
  static constexpr AlgebraicClass set() { return {ReceiveMode::Set, SendMode::Ported}; }
  static constexpr AlgebraicClass vector_broadcast() { return {ReceiveMode::Vector, SendMode::Broadcast}; }
  static constexpr AlgebraicClass multiset_broadcast() { return {ReceiveMode::Multiset, SendMode::Broadcast}; }
  static constexpr AlgebraicClass set_broadcast() { return {ReceiveMode::Set, SendMode::Broadcast}; }

  std::string name() const;

  /// True if a machine of class `this` is, by definition, also a machine
  /// of class `other` (e.g. Set ⊆ Multiset ⊆ Vector; Broadcast ⊆ Ported
  /// in the sense of Figure 5a's trivial containments).
  bool contained_in(const AlgebraicClass& other) const;
};

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  virtual AlgebraicClass algebraic_class() const = 0;

  /// z0: initial state as a function of the node's degree (0..Delta).
  virtual Value init(int degree) const = 0;

  /// Membership in the stopping set Y.
  virtual bool is_stopping(const Value& state) const = 0;

  /// mu: the message sent to out-port `port` (1-based). For machines with
  /// SendMode::Broadcast the engine calls this exactly once per round
  /// (with port = 1) and replicates the result, enforcing the class.
  /// Never called on stopping states (the engine sends m0 for those).
  virtual Value message(const Value& state, int port) const = 0;

  /// delta: state transition. `inbox` is presented per ReceiveMode:
  ///   Vector   -> Tuple of deg(v) messages, in in-port order 1..deg(v)
  ///   Multiset -> MSet of the deg(v) messages
  ///   Set      -> Set of the distinct messages
  /// Never called on stopping states (they are absorbing).
  virtual Value transition(const Value& state, const Value& inbox,
                           int degree) const = 0;
};

/// A machine assembled from closures — convenient for tests, examples and
/// the machine transformers.
class LambdaMachine final : public StateMachine {
 public:
  AlgebraicClass cls;
  std::function<Value(int)> init_fn;
  std::function<bool(const Value&)> stopping_fn;
  std::function<Value(const Value&, int)> message_fn;
  std::function<Value(const Value&, const Value&, int)> transition_fn;

  AlgebraicClass algebraic_class() const override { return cls; }
  Value init(int degree) const override { return init_fn(degree); }
  bool is_stopping(const Value& state) const override { return stopping_fn(state); }
  Value message(const Value& state, int port) const override {
    return message_fn(state, port);
  }
  Value transition(const Value& state, const Value& inbox, int degree) const override {
    return transition_fn(state, inbox, degree);
  }
};

/// A sequence A = (A_1, A_2, ...) of machines, one per maximum degree
/// (Section 1.4): family(delta) builds A_delta.
using MachineFamily =
    std::function<std::shared_ptr<const StateMachine>(int delta)>;

}  // namespace wm
