// Canonical forms of multimodal Kripke models — the KripkeModel reduction
// of graph/canonical.hpp, kept in wm_logic so wm_graph stays dependency-free.
//
// States reduce to vertices, each registered modality to one relation
// (sorted by Modality's ordering, so isomorphic models line their
// relations up), and the valuation to the initial colouring: profile ids
// are assigned in sorted-profile order (canonical), and the header lists
// the modalities, the proposition count and the profile table, so models
// of different signatures never share a certificate. Parallel edges (the
// graded quotients' multiplicity edges) are preserved as multiset entries
// in both the refinement signatures and the certificate.
#include <map>
#include <string>
#include <vector>

#include "graph/canonical.hpp"
#include "logic/kripke.hpp"

namespace wm {

RelationalStructure structure_of(const KripkeModel& k) {
  const int n = k.num_states();
  RelationalStructure s;
  s.n = n;
  s.header = "K;P" + std::to_string(k.num_props()) + ";M";
  const std::vector<Modality> mods = k.modalities();  // sorted (map keys)
  for (const Modality& alpha : mods) {
    s.header += alpha.to_string();
    s.header += ',';
  }
  s.header += ';';
  // Valuation profiles -> canonical colour ids, assigned in sorted
  // profile order; the profile table goes into the header.
  std::map<std::vector<bool>, int> profiles;
  std::vector<std::vector<bool>> profile_of(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    std::vector<bool> profile;
    for (int q = 1; q <= k.num_props(); ++q) {
      profile.push_back(k.prop_holds(q, v));
    }
    profiles.emplace(profile, 0);
    profile_of[v] = std::move(profile);
  }
  int next_id = 0;
  for (auto& [profile, id] : profiles) {
    id = next_id++;
    s.header += 'v';
    for (bool b : profile) s.header += b ? '1' : '0';
  }
  s.header += ';';
  s.colour.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    s.colour[v] = profiles.find(profile_of[v])->second;
  }
  for (const Modality& alpha : mods) {
    const std::size_t r = s.add_relation();
    for (int v = 0; v < n; ++v) {
      for (int w : k.successors(alpha, v)) s.add_edge(r, v, w);
    }
  }
  return s;
}

CanonicalForm canonical_form(const KripkeModel& k) {
  return canonical_form(structure_of(k));
}

std::string canonical_certificate(const KripkeModel& k) {
  return canonical_form(k).certificate;
}

std::uint64_t canonical_hash(const KripkeModel& k) {
  return certificate_hash(canonical_certificate(k));
}

bool is_isomorphic(const KripkeModel& a, const KripkeModel& b) {
  if (a.num_states() != b.num_states() || a.num_props() != b.num_props()) {
    return false;
  }
  return canonical_certificate(a) == canonical_certificate(b);
}

}  // namespace wm
