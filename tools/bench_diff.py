#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json files and gate on work-counter regressions.

The benches emit a "metrics" object with two counter families:

  * "work"  -- deterministic work counters. Identical across thread counts
               by construction, so any increase between two builds of the
               same bench is a genuine algorithmic regression (more
               assignments scanned, more refinement rounds, ...), not
               scheduling noise. These are gated.
  * "info"  -- scheduling telemetry (steals, idle wakeups, ...). Varies run
               to run; never gated. Dedup-table telemetry ("dedup.*": probe
               lengths, CAS retries, segment grows) is surfaced as
               informational notes so table-health drift is visible in CI
               logs, but it can never fail the gate -- not even under
               --exact.

Wall-clock ("wall_ms") is reported but never gated: CI machines are too
noisy for time thresholds, which is exactly why the work counters exist.

Usage:
  bench_diff.py [--threshold PCT] [--exact] BASELINE_DIR CURRENT_DIR
  bench_diff.py --self-test

Exit status: 0 = no regressions, 1 = regression (or missing bench/counter),
2 = bad invocation or unreadable input.

Rules, per bench file present in BASELINE_DIR:
  * bench json missing from CURRENT_DIR ............ FAIL (coverage lost)
  * work counter missing from current .............. FAIL (instrumentation
                                                     silently dropped)
  * work counter grew beyond threshold ............. FAIL (default 5%; a
                                                     baseline of 0 fails on
                                                     any growth)
  * work counter shrank, or is new in current ...... informational only
  * --exact: any work-counter difference at all .... FAIL (used by CI to
             assert cross-thread-count determinism of the same build)

Per-counter overrides: a baseline json may carry a top-level "gate"
object tuning individual work counters:

  "gate": {"canonical.refine_rounds": {"rel_tol": 15.0},
           "census.probe_work":       {"gate": false}}

  * rel_tol: PCT ........ this counter's own growth threshold, replacing
                          the global --threshold AND --exact for it (a
                          counter that is deterministic per build but
                          drifts legitimately across builds).
  * gate: false ......... never gated -- not even under --exact; drift is
                          surfaced as a note. For counters kept only as
                          workload descriptors.
A "gate" entry naming a counter absent from the baseline's metrics.work
FAILs: a typo must not silently ungate the counter it meant.
And per bench file present only in CURRENT_DIR:
  * bench json with no matching baseline ........... FAIL (an ungated bench
                                                     is a silent coverage
                                                     hole; check in a
                                                     baseline or pass
                                                     --allow-new while one
                                                     is being prepared)

The json's "manifest" (provenance) and "timings" (duration histograms)
objects are timing/environment-dependent by design and are ignored by
every rule above — only metrics.work is ever gated. As with "dedup.*",
a large latency move is still worth a line in the CI log: a p99 shift
of at least 2x either way (both sets having recorded samples) is
surfaced as an informational note, and can never fail the gate -- not
even under --exact.
"""

import argparse
import contextlib
import glob
import io
import json
import os
import sys
import tempfile


def load_bench(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    work = data.get("metrics", {}).get("work")
    if not isinstance(work, dict):
        raise SystemExit(f"bench_diff: {path} has no metrics.work object")
    return data


def collect(dirname):
    paths = sorted(glob.glob(os.path.join(dirname, "BENCH_*.json")))
    return {os.path.basename(p): load_bench(p) for p in paths}


def diff_sets(baseline, current, threshold, exact, allow_new=False):
    """Returns (failures, notes) as lists of human-readable lines."""
    failures = []
    notes = []
    for fname in sorted(baseline):
        base = baseline[fname]
        name = base.get("name", fname)
        if fname not in current:
            failures.append(f"{name}: bench json missing from current set")
            continue
        cur = current[fname]
        bwork = base["metrics"]["work"]
        cwork = cur["metrics"]["work"]
        gate_cfg = base.get("gate") or {}
        for key in sorted(set(gate_cfg) - set(bwork)):
            failures.append(
                f"{name}: gate override names unknown work counter '{key}' "
                f"(typo? overrides must match metrics.work)")
        for key in sorted(bwork):
            bval = bwork[key]
            cfg = gate_cfg.get(key) or {}
            if cfg.get("gate") is False:
                notes.append(
                    f"{name}: '{key}' ungated by baseline "
                    f"({bval} -> {cwork.get(key, 'absent')})")
                continue
            if key not in cwork:
                failures.append(
                    f"{name}: work counter '{key}' missing from current "
                    f"(baseline {bval})")
                continue
            cval = cwork[key]
            rel_tol = cfg.get("rel_tol")
            if exact and rel_tol is None:
                if cval != bval:
                    failures.append(
                        f"{name}: '{key}' differs ({bval} -> {cval})")
                continue
            key_threshold = threshold if rel_tol is None else float(rel_tol)
            limit = bval * (1.0 + key_threshold / 100.0)
            if cval > limit:
                pct = (100.0 * (cval - bval) / bval) if bval else float("inf")
                failures.append(
                    f"{name}: '{key}' regressed {bval} -> {cval} "
                    f"(+{pct:.1f}%, threshold {key_threshold:.1f}%"
                    f"{', per-counter' if rel_tol is not None else ''})")
            elif cval < bval:
                notes.append(f"{name}: '{key}' improved {bval} -> {cval}")
        for key in sorted(set(cwork) - set(bwork)):
            if exact:
                failures.append(
                    f"{name}: '{key}' differs (absent -> {cwork[key]})")
            else:
                notes.append(f"{name}: new work counter '{key}' = {cwork[key]}")
        bms, cms = base.get("wall_ms"), cur.get("wall_ms")
        if isinstance(bms, (int, float)) and isinstance(cms, (int, float)):
            notes.append(
                f"{name}: wall_ms {bms:.1f} -> {cms:.1f} (informational)")
        # Dedup-table health telemetry: probe lengths, CAS retries and
        # segment grows live under metrics.info because they are timing-
        # dependent (a CAS retry count is a race outcome). Surface them so
        # drift is visible, but NEVER gate on them -- not even --exact.
        binfo = base.get("metrics", {}).get("info") or {}
        cinfo = cur.get("metrics", {}).get("info") or {}
        for key in sorted(k for k in set(binfo) | set(cinfo)
                          if k.startswith("dedup.")):
            bval = binfo.get(key, "absent")
            cval = cinfo.get(key, "absent")
            notes.append(
                f"{name}: info '{key}' {bval} -> {cval} (informational)")
        # Latency p99 shifts: duration histograms are environment-
        # dependent, so they can never gate -- but an order-of-magnitude
        # p99 move is worth a CI-log line. Noted when both sets recorded
        # samples for the phase and the shift is at least 2x either way.
        btim = base.get("timings") or {}
        ctim = cur.get("timings") or {}
        for key in sorted(set(btim) & set(ctim)):
            bt, ct = btim[key], ctim[key]
            if not (isinstance(bt, dict) and isinstance(ct, dict)):
                continue
            bp99, cp99 = bt.get("p99_us"), ct.get("p99_us")
            if not (isinstance(bp99, (int, float))
                    and isinstance(cp99, (int, float))):
                continue
            if bt.get("count", 0) <= 0 or ct.get("count", 0) <= 0 \
                    or bp99 <= 0:
                continue
            ratio = cp99 / bp99
            if ratio >= 2.0 or ratio <= 0.5:
                notes.append(
                    f"{name}: timing '{key}' p99 {bp99:.1f}µs -> "
                    f"{cp99:.1f}µs ({ratio:.2f}x, informational -- "
                    f"latency never gates)")
    for fname in sorted(set(current) - set(baseline)):
        name = current[fname].get("name", fname)
        if allow_new:
            notes.append(f"{name}: new bench (no baseline; --allow-new)")
        else:
            failures.append(
                f"{name}: bench json has no matching baseline (check one "
                f"in, or pass --allow-new)")
    return failures, notes


def run_diff(args):
    baseline = collect(args.baseline)
    current = collect(args.current)
    if not baseline:
        raise SystemExit(f"bench_diff: no BENCH_*.json under {args.baseline}")
    failures, notes = diff_sets(baseline, current, args.threshold, args.exact,
                                args.allow_new)
    for line in notes:
        print(f"  note: {line}")
    for line in failures:
        print(f"  FAIL: {line}")
    if failures:
        print(f"bench_diff: {len(failures)} regression(s) across "
              f"{len(baseline)} baseline bench(es)")
        return 1
    print(f"bench_diff: OK ({len(baseline)} bench(es), "
          f"threshold {'exact' if args.exact else f'{args.threshold:.1f}%'})")
    return 0


def self_test():
    """Exercises the gate on synthetic data; exits non-zero if any rule
    misfires. CI runs this so the gate itself is covered by the gate job."""

    def write_set(root, sub, work, wall=10.0, name="fake", manifest=None,
                  timings=None, info=None, gate=None):
        d = os.path.join(root, sub)
        os.makedirs(d, exist_ok=True)
        if info is None:
            info = {"pool.tasks": 3}
        blob = {"name": name, "n": 4, "threads": 2, "wall_ms": wall,
                "graphs_per_sec": 0.0,
                "metrics": {"work": work, "info": info}}
        if manifest is not None:
            blob["manifest"] = manifest
        if timings is not None:
            blob["timings"] = timings
        if gate is not None:
            blob["gate"] = gate
        with open(os.path.join(d, f"BENCH_{name}.json"), "w") as f:
            json.dump(blob, f)
        return d

    class A:
        threshold = 5.0
        exact = False
        allow_new = False

    checks = []
    with tempfile.TemporaryDirectory() as tmp:
        a = A()
        a.baseline = write_set(tmp, "base", {"engine.rounds": 100,
                                             "decision.blocks": 40})
        # Identical -> pass.
        a.current = write_set(tmp, "same", {"engine.rounds": 100,
                                            "decision.blocks": 40})
        checks.append(("identical sets pass", run_diff(a) == 0))
        # Within threshold -> pass; wall-time doubling is ignored.
        a.current = write_set(tmp, "near", {"engine.rounds": 104,
                                            "decision.blocks": 40}, wall=99.0)
        checks.append(("4% growth within 5% passes", run_diff(a) == 0))
        # Beyond threshold -> fail.
        a.current = write_set(tmp, "slow", {"engine.rounds": 120,
                                            "decision.blocks": 40})
        checks.append(("20% growth fails", run_diff(a) == 1))
        # Dropped counter -> fail.
        a.current = write_set(tmp, "drop", {"engine.rounds": 100})
        checks.append(("dropped counter fails", run_diff(a) == 1))
        # Improvement and new counter -> pass.
        a.current = write_set(tmp, "wins", {"engine.rounds": 50,
                                            "decision.blocks": 40,
                                            "bisim.refinements": 7})
        checks.append(("improvement passes", run_diff(a) == 0))
        # Exact mode: the same improvement must now fail.
        a.exact = True
        checks.append(("exact mode flags any difference", run_diff(a) == 1))
        a.current = write_set(tmp, "same2", {"engine.rounds": 100,
                                             "decision.blocks": 40})
        checks.append(("exact mode passes identical", run_diff(a) == 0))
        # Missing bench file -> fail.
        a.exact = False
        empty = os.path.join(tmp, "empty")
        os.makedirs(empty)
        a.current = empty
        checks.append(("missing bench json fails", run_diff(a) == 1))
        # New bench with no baseline -> fail, unless --allow-new.
        work = {"engine.rounds": 100, "decision.blocks": 40}
        a.current = write_set(tmp, "extra", work)
        write_set(tmp, "extra", {"other.counter": 1}, name="ungated")
        checks.append(("new bench without baseline fails", run_diff(a) == 1))
        a.allow_new = True
        checks.append(("--allow-new tolerates the new bench",
                       run_diff(a) == 0))
        a.allow_new = False
        # Manifest and timings differ wildly, work identical -> pass: the
        # gate must ignore provenance and duration histograms entirely.
        a.baseline = write_set(
            tmp, "mbase", work,
            manifest={"git": "v1-g0000000", "start": "2026-01-01T00:00:00Z"},
            timings={"engine.execute": {"count": 9, "p50_us": 1.023,
                                        "p90_us": 2.047, "p99_us": 2.047,
                                        "max_us": 1.900}})
        a.current = write_set(
            tmp, "mcur", work,
            manifest={"git": "v2-gfffffff", "start": "2026-06-01T12:00:00Z",
                      "trace": True},
            timings={"engine.execute": {"count": 9000, "p50_us": 500.0,
                                        "p90_us": 900.0, "p99_us": 1000.0,
                                        "max_us": 5000.0},
                     "bench.extra.phase": {"count": 1, "p50_us": 1.0,
                                           "p90_us": 1.0, "p99_us": 1.0,
                                           "max_us": 1.0}})
        checks.append(("manifest/timings drift ignored", run_diff(a) == 0))
        a.exact = True
        checks.append(("manifest/timings drift ignored under --exact",
                       run_diff(a) == 0))
        a.exact = False
        # That 2.047µs -> 1000µs p99 move (both sets sampled the phase)
        # must be *noted* without gating; a phase present in only one
        # set must not produce a p99 note.
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = run_diff(a)
        checks.append(("p99 shift >=2x is noted but never gates",
                       rc == 0
                       and "timing 'engine.execute' p99" in buf.getvalue()
                       and "bench.extra.phase" not in buf.getvalue()))
        a.exact = True
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = run_diff(a)
        checks.append(("p99 shift never gates under --exact",
                       rc == 0
                       and "timing 'engine.execute' p99" in buf.getvalue()))
        a.exact = False
        # A sub-2x shift, or a shift on a phase with no recorded samples,
        # stays silent: the note is for order-of-magnitude drift only.
        a.baseline = write_set(
            tmp, "pbase", work,
            timings={"quiet.phase": {"count": 5, "p50_us": 8.0,
                                     "p90_us": 9.0, "p99_us": 10.0,
                                     "max_us": 11.0},
                     "empty.phase": {"count": 0, "p50_us": 0.0,
                                     "p90_us": 0.0, "p99_us": 1.0,
                                     "max_us": 0.0}})
        a.current = write_set(
            tmp, "pcur", work,
            timings={"quiet.phase": {"count": 5, "p50_us": 9.0,
                                     "p90_us": 14.0, "p99_us": 15.0,
                                     "max_us": 16.0},
                     "empty.phase": {"count": 0, "p50_us": 0.0,
                                     "p90_us": 0.0, "p99_us": 999.0,
                                     "max_us": 0.0}})
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = run_diff(a)
        checks.append(("sub-2x and zero-count p99 shifts stay silent",
                       rc == 0 and "p99" not in buf.getvalue()))
        # Dedup-table telemetry drifts wildly between the sets: it must be
        # *reported* (a note naming the counter) yet never gate, not even
        # under --exact -- probe lengths and CAS retries are race outcomes,
        # not work.
        a.baseline = write_set(tmp, "dbase", work,
                               info={"pool.tasks": 3,
                                     "dedup.probe_steps": 100,
                                     "dedup.cas_retries": 0})
        a.current = write_set(tmp, "dcur", work,
                              info={"pool.tasks": 99,
                                    "dedup.probe_steps": 1000000,
                                    "dedup.cas_retries": 31337,
                                    "dedup.grows": 5})
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = run_diff(a)
        checks.append(("dedup info drift is reported but never gates",
                       rc == 0 and "dedup.probe_steps" in buf.getvalue()
                       and "dedup.cas_retries" in buf.getvalue()))
        a.exact = True
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = run_diff(a)
        checks.append(("dedup info drift never gates under --exact",
                       rc == 0 and "dedup.grows" in buf.getvalue()))
        a.exact = False
        # Per-counter overrides: a baseline may widen one counter's
        # tolerance (rel_tol) or ungate it entirely (gate: false) without
        # loosening the gate for everything else in the bench.
        a.baseline = write_set(
            tmp, "gbase", work,
            gate={"engine.rounds": {"rel_tol": 30.0}})
        a.current = write_set(tmp, "gnear", {"engine.rounds": 125,
                                             "decision.blocks": 40})
        checks.append(("rel_tol override admits growth past the global "
                       "threshold", run_diff(a) == 0))
        a.current = write_set(tmp, "gfar", {"engine.rounds": 140,
                                            "decision.blocks": 40})
        checks.append(("rel_tol override still fails past its own bound",
                       run_diff(a) == 1))
        a.current = write_set(tmp, "gother", {"engine.rounds": 100,
                                              "decision.blocks": 48})
        checks.append(("rel_tol override does not loosen other counters",
                       run_diff(a) == 1))
        a.exact = True
        a.current = write_set(tmp, "gexact", {"engine.rounds": 110,
                                              "decision.blocks": 40})
        checks.append(("rel_tol override replaces --exact for its counter",
                       run_diff(a) == 0))
        a.exact = False
        a.baseline = write_set(
            tmp, "ubase", work,
            gate={"engine.rounds": {"gate": False}})
        a.current = write_set(tmp, "uwild", {"engine.rounds": 9999,
                                             "decision.blocks": 40})
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = run_diff(a)
        checks.append(("gate:false never gates yet is noted",
                       rc == 0 and "ungated by baseline" in buf.getvalue()))
        a.exact = True
        a.current = write_set(tmp, "udrop", {"decision.blocks": 40})
        checks.append(("gate:false tolerates even a dropped counter "
                       "under --exact", run_diff(a) == 0))
        a.exact = False
        a.baseline = write_set(
            tmp, "tbase", work,
            gate={"engine.runds": {"rel_tol": 30.0}})  # typo'd counter
        a.current = write_set(tmp, "tcur", work)
        checks.append(("gate override naming an unknown counter fails",
                       run_diff(a) == 1))

    bad = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"self-test: {'ok  ' if ok else 'FAIL'} {label}")
    if bad:
        print(f"bench_diff --self-test: {len(bad)} rule(s) misfired")
        return 1
    print(f"bench_diff --self-test: all {len(checks)} rules behave")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description="Gate BENCH_*.json work counters against a baseline set.")
    ap.add_argument("baseline", nargs="?",
                    help="directory holding baseline BENCH_*.json files")
    ap.add_argument("current", nargs="?",
                    help="directory holding freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=5.0, metavar="PCT",
                    help="allowed work-counter growth in percent (default 5)")
    ap.add_argument("--exact", action="store_true",
                    help="fail on ANY work-counter difference "
                         "(cross-thread determinism check)")
    ap.add_argument("--allow-new", action="store_true",
                    help="tolerate current benches with no baseline "
                         "(default: FAIL, so new benches must check in a "
                         "baseline to be gated)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate's own rules on synthetic data")
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current directories are required "
                 "(or use --self-test)")
    return run_diff(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
