// Distinguishing and characteristic formulas.
//
// Bisimulation (Fact 1) says bisimilar states agree on all formulas; the
// converse direction, on finite models, is witnessed constructively:
// whenever u and v are NOT (g-)bisimilar there is a formula true at u
// and false at v. This module extracts such formulas from the partition
// refinement history — turning every separation in this library into a
// concrete modal-logic certificate, and (via the Theorem 2 compiler)
// into a concrete distributed algorithm that tells u from v.
//
// Construction: characteristic formulas per refinement round,
//   chi^0_B  = atomic profile of block B,
//   chi^{r+1}_B = chi^r_{parent(B)} ∧
//       for each modality alpha and each round-r block C:
//         ungraded: <alpha> chi^r_C or ~<alpha> chi^r_C, per whether B's
//                   members have an alpha-successor in C;
//         graded:   "exactly c_{alpha,C}" via <alpha>_{>=c} ∧ ~<alpha>_{>=c+1}.
// Formulas share subterms structurally; their printed size can be
// exponential but their DAG size is polynomial.
#pragma once

#include <optional>
#include <vector>

#include "bisim/bisimulation.hpp"
#include "logic/formula.hpp"

namespace wm {

/// Characteristic formula of `state`'s block at the refinement fixpoint:
/// true exactly on the states (g-)bisimilar to `state`.
Formula characteristic_formula(const KripkeModel& k, int state,
                               bool graded = false);

/// A formula true at u and false at v, or nullopt if u and v are
/// (g-)bisimilar. Modal depth is at most the number of refinement
/// rounds needed to split them.
std::optional<Formula> distinguishing_formula(const KripkeModel& k, int u,
                                              int v, bool graded = false);

/// Characteristic formulas of every state's block after exactly `rounds`
/// refinement steps (rounds < 0: the fixpoint): result[v] is true at w
/// iff v and w are `rounds`-step (g-)bisimilar. md(result[v]) <= rounds.
/// Used by the synthesis pipeline (core/synthesis.hpp).
std::vector<Formula> characteristic_formulas(const KripkeModel& k, int rounds,
                                             bool graded = false);

}  // namespace wm
