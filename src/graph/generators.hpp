// Graph generators: the standard families used throughout the paper's
// proofs and our experiments, plus randomised workload generators.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace wm {

/// Path on n nodes (n >= 1).
Graph path_graph(int n);
/// Cycle on n nodes (n >= 3).
Graph cycle_graph(int n);
/// k-star: centre node 0 joined to leaves 1..k (Theorem 11).
Graph star_graph(int k);
/// Complete graph K_n.
Graph complete_graph(int n);
/// Complete bipartite K_{a,b}; left side 0..a-1, right side a..a+b-1.
Graph complete_bipartite(int a, int b);
/// d-dimensional hypercube, 2^d nodes.
Graph hypercube(int d);
/// a x b grid.
Graph grid_graph(int a, int b);
/// The Petersen graph (3-regular, 10 nodes, has a perfect matching).
Graph petersen_graph();

/// The 16-node 3-regular connected graph with no 1-factor from
/// Figure 9a of the paper ([Bondy–Murty, Figure 5.10]): a hub node joined
/// to the degree-2 apex of three 5-node gadgets. Removing the hub leaves
/// three odd components, so by Tutte's theorem no perfect matching exists.
Graph fig9a_graph();

/// A connected k-regular graph (k odd, k >= 3) with no 1-factor — a member
/// of the paper's class G (Section 5.3): hub of degree k joined to k
/// gadgets, each gadget = K_{k+1} with one edge subdivided... realised as
/// K_{k+1} minus an edge {d,e} plus an apex adjacent to d and e.
/// Nodes: 1 + k*(k+2). Precondition: k odd, k >= 3.
Graph class_g_graph(int k);

/// Erdos–Renyi-style random graph conditioned on max degree <= max_deg.
/// Edges are sampled in random order and kept when both endpoints have
/// residual degree. Deterministic given rng state.
Graph random_bounded_degree_graph(int n, int max_deg, double edge_prob, Rng& rng);

/// Random connected k-regular graph via the pairing model with restarts.
/// Precondition: n*k even, k < n. May be slow for dense k; fine for k <= 8.
Graph random_regular_graph(int n, int k, Rng& rng);

/// Random spanning-tree-connected graph with extra edges, max degree bound.
Graph random_connected_graph(int n, int max_deg, int extra_edges, Rng& rng);

}  // namespace wm
