file(REMOVE_RECURSE
  "CMakeFiles/wm_logic.dir/formula.cpp.o"
  "CMakeFiles/wm_logic.dir/formula.cpp.o.d"
  "CMakeFiles/wm_logic.dir/kripke.cpp.o"
  "CMakeFiles/wm_logic.dir/kripke.cpp.o.d"
  "CMakeFiles/wm_logic.dir/model_checker.cpp.o"
  "CMakeFiles/wm_logic.dir/model_checker.cpp.o.d"
  "CMakeFiles/wm_logic.dir/parser.cpp.o"
  "CMakeFiles/wm_logic.dir/parser.cpp.o.d"
  "CMakeFiles/wm_logic.dir/random_formula.cpp.o"
  "CMakeFiles/wm_logic.dir/random_formula.cpp.o.d"
  "CMakeFiles/wm_logic.dir/simplify.cpp.o"
  "CMakeFiles/wm_logic.dir/simplify.cpp.o.d"
  "libwm_logic.a"
  "libwm_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
