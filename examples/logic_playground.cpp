// Logic playground: parse a modal formula, model-check it on a graph's
// Kripke view, compile it into a distributed algorithm (Theorem 2), run
// the algorithm, and watch the two agree. Then go the other way: extract
// a formula from a hand-written machine (Theorem 2, Parts 3-4).
//
//   ./logic_playground ["formula"] [graph: star|cycle|path|petersen]
//
// Formula syntax: q1, T, F, ~f, (f & g), (f | g), <i,j> f, <*,j>>=k f,
// [i,*] f — the '*' components must match the chosen Kripke view; this
// demo uses K_{-,-}, so write modalities as <*,*>.
#include <cstdio>
#include <iostream>
#include <string>

#include "algorithms/machines.hpp"
#include "compile/extract.hpp"
#include "compile/formula_compiler.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/parser.hpp"
#include "obs/env.hpp"
#include "runtime/engine.hpp"

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  using namespace wm;
  const std::string text = argc > 1 ? argv[1] : "<*,*>>=2 (q1 | q2)";
  const std::string gname = argc > 2 ? argv[2] : "star";

  Graph g;
  if (gname == "star") g = star_graph(4);
  else if (gname == "cycle") g = cycle_graph(6);
  else if (gname == "path") g = path_graph(6);
  else if (gname == "petersen") g = petersen_graph();
  else {
    std::fprintf(stderr, "unknown graph '%s'\n", gname.c_str());
    return 1;
  }
  const int delta = g.max_degree();
  const PortNumbering p = PortNumbering::identity(g);

  Formula psi;
  try {
    psi = parse_formula(text);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (!psi.in_signature(Variant::MinusMinus, delta)) {
    std::fprintf(stderr,
                 "formula not in the K_{-,-} signature for Delta=%d "
                 "(use <*,*> modalities, props up to q%d)\n",
                 delta, delta);
    return 1;
  }

  std::cout << "formula : " << psi.to_string() << "   (modal depth "
            << psi.modal_depth() << (psi.is_graded() ? ", graded" : "")
            << ")\n";
  std::cout << "graph   : " << gname << ", n=" << g.num_nodes()
            << ", Delta=" << delta << "\n\n";

  // Model checking on K_{-,-}(G, p).
  const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);
  const auto truth = model_check(k, psi);
  std::cout << "model checker  :";
  for (int v = 0; v < g.num_nodes(); ++v) std::cout << ' ' << truth[v];
  std::cout << '\n';

  // Theorem 2: compile and execute.
  const auto machine = compile_formula(psi, Variant::MinusMinus, delta);
  const auto r = execute(*machine, p);
  std::cout << "compiled " << machine->algebraic_class().name() << " machine:";
  for (int v : r.outputs_as_ints()) std::cout << ' ' << v;
  std::cout << "   (" << r.rounds << " rounds = md+1)\n\n";

  // The reverse direction: extract a GML formula from the odd-odd
  // machine and print it.
  ExtractionOptions opts;
  opts.delta = 2;  // keep the printed formula small
  opts.rounds = 1;
  const Formula extracted = extract_formula(*odd_odd_machine(), opts);
  std::cout << "Theorem 2 (Parts 3-4) — formula extracted from the odd-odd\n"
            << "machine for Delta=2:\n  " << extracted.to_string() << "\n";
  return 0;
}
