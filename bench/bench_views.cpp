// Regenerates the related-work toolbox numbers (Section 3.2/3.3):
// Yamashita–Kameda view classes across graph families and numberings,
// the depth at which views stabilise (Norris' n-1 is a worst case), and
// leader-election solvability — plus timing of the view computation.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "cover/views.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "util/value.hpp"
#include "bench_util.hpp"

namespace {

using namespace wm;

int classes_at_depth(const PortNumbering& p, int depth) {
  WM_TIME_SCOPE("bench.views.classes");
  const auto vs = views(p, depth);
  std::vector<Value> uniq(vs.begin(), vs.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  return static_cast<int>(uniq.size());
}

int stabilisation_depth(const PortNumbering& p) {
  const int n = p.graph().num_nodes();
  int prev = classes_at_depth(p, 0);
  for (int d = 1; d <= n; ++d) {
    const int cur = classes_at_depth(p, d);
    if (cur == prev && cur == classes_at_depth(p, n - 1)) return d - 1;
    prev = cur;
  }
  return n - 1;
}

void row(const char* name, const PortNumbering& p) {
  WM_TIME_SCOPE("bench.views.row");
  const Graph& g = p.graph();
  const auto classes = view_classes(p);
  const int distinct = *std::max_element(classes.begin(), classes.end()) + 1;
  // Leaders = the maximum stable-view class (what elect_leaders computes;
  // derived here from the interned views so symmetric instances — whose
  // equal-but-unshared in-machine view trees are exponential to compare —
  // stay cheap; the machine itself is exercised in tests and examples).
  const auto vs = stable_views(p);
  const Value maxview = *std::max_element(vs.begin(), vs.end());
  int count = 0;
  for (const Value& v : vs) count += v == maxview ? 1 : 0;
  std::printf("%-28s %-4d %-8d %-10d %-10d %-8s\n", name, g.num_nodes(),
              distinct, stabilisation_depth(p), count,
              count == 1 ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = wm::benchutil::parse_threads(argc, argv);
  const wm::benchutil::Timer wm_total;

  std::printf("=== Yamashita–Kameda views across families ===\n\n");
  std::printf("%-28s %-4s %-8s %-10s %-10s %-8s\n", "graph (numbering)", "n",
              "classes", "stab.depth", "leaders", "LE ok");
  Rng rng(2026);
  row("path-8 (identity)", PortNumbering::identity(path_graph(8)));
  row("cycle-8 (identity)", PortNumbering::identity(cycle_graph(8)));
  row("cycle-8 (symmetric)", PortNumbering::symmetric_regular(cycle_graph(8)));
  row("star-7 (identity)", PortNumbering::identity(star_graph(7)));
  row("petersen (identity)", PortNumbering::identity(petersen_graph()));
  row("petersen (symmetric)",
      PortNumbering::symmetric_regular(petersen_graph()));
  row("fig9a (symmetric)", PortNumbering::symmetric_regular(fig9a_graph()));
  row("hypercube-3 (identity)", PortNumbering::identity(hypercube(3)));
  {
    const Graph g = random_connected_graph(12, 3, 5, rng);
    row("random-12 (random)", PortNumbering::random(g, rng));
  }
  {
    const Graph g = random_regular_graph(12, 3, rng);
    row("random-3-regular (random)", PortNumbering::random(g, rng));
  }

  std::printf("\nShape checks: symmetric numberings give ONE view class and\n");
  std::printf("leader election degenerates (everyone elected); random\n");
  std::printf("numberings on irregular graphs almost surely separate all\n");
  std::printf("nodes, making leader election with known n solvable.\n");
  std::printf("Stabilisation depth stays well below the Norris bound n-1.\n");
  wm::benchutil::report_phase("total", wm_total.ms());
  wm::benchutil::write_bench_json("views", 8, threads, wm_total.ms(), 0);
  return 0;
}
