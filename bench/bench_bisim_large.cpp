// Timing bench: the smaller-half worklist refinement at scale — one
// million-state synthetic Kripke model swept over bounded depths, plus a
// batch of mid-size models refined to fixpoint across the pool
// (--threads N).
//
// The large model is arithmetic, not random: state v has successors
// (2v+1, 6v+5) mod n under one modality and (3v+2) mod n under another,
// with valuation v%3==0 / v%5==0 — fully deterministic, so the printed
// block counts and round numbers are identical at any thread count and
// the work counters feed the regression gate. Depth-bounded rounds are
// the paper's modal-depth correspondence; the sweep shows how fast the
// partition explodes with depth, which is exactly the load the worklist's
// dirty-set propagation is built for.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "bisim/bisimulation.hpp"
#include "logic/kripke.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace wm;

KripkeModel arithmetic_model(int n) {
  KripkeModel k(n, 2);
  const Modality m1{0, 1};
  const Modality m2{0, 2};
  k.ensure_relation(m1);
  k.ensure_relation(m2);
  for (int v = 0; v < n; ++v) {
    const auto u = static_cast<long long>(v);
    k.add_edge(m1, v, static_cast<int>((2 * u + 1) % n));
    k.add_edge(m1, v, static_cast<int>((6 * u + 5) % n));
    k.add_edge(m2, v, static_cast<int>((3 * u + 2) % n));
    if (v % 3 == 0) k.set_prop(1, v);
    if (v % 5 == 0) k.set_prop(2, v);
  }
  return k;
}

/// A seeded sparse digraph model (out-degree 2 + 1 across two
/// modalities); random targets make refinement hit the fixpoint in a
/// handful of rounds.
KripkeModel random_model(int n, std::uint64_t seed) {
  KripkeModel k(n, 2);
  const Modality m1{0, 1};
  const Modality m2{0, 2};
  k.ensure_relation(m1);
  k.ensure_relation(m2);
  Rng rng(seed);
  for (int v = 0; v < n; ++v) {
    k.add_edge(m1, v, static_cast<int>(rng.below(n)));
    k.add_edge(m1, v, static_cast<int>(rng.below(n)));
    k.add_edge(m2, v, static_cast<int>(rng.below(n)));
    if (rng.chance(1, 3)) k.set_prop(1, v);
    if (rng.chance(1, 5)) k.set_prop(2, v);
  }
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());

  std::printf("=== Bisimulation at scale: smaller-half worklist ===\n");
  double wall = 0;
  std::size_t models = 0;

  // Phase 1: million-state depth sweep (sequential — one huge model).
  {
    const int n = 1 << 20;
    const KripkeModel k = arithmetic_model(n);
    for (const int depth : {1, 2, 4, 8}) {
      const benchutil::Timer timer;
      Partition p;
      {
        WM_TIME_SCOPE("bench.bisim_large.depth_sweep");
        p = coarsest_bisimulation(k, depth);
      }
      const double ms = timer.ms();
      std::printf("depth sweep n=%-8d t=%-2d blocks %-8d rounds %d\n", n,
                  depth, p.num_blocks, p.rounds);
      benchutil::report_phase("depth sweep", ms, 1);
      wall += ms;
      ++models;
    }
  }

  // Phase 2: fixpoint batch across the pool, graded and ungraded.
  for (const bool graded : {false, true}) {
    const int n = 1 << 14;
    const int batch = 12;
    std::vector<KripkeModel> batch_models;
    batch_models.reserve(batch);
    for (int b = 0; b < batch; ++b) {
      batch_models.push_back(random_model(n, 2012 + static_cast<std::uint64_t>(b)));
    }
    std::vector<int> blocks(batch_models.size());
    std::vector<int> rounds(batch_models.size());
    const benchutil::Timer timer;
    pool.parallel_for(0, batch_models.size(), [&](std::uint64_t i) {
      WM_TIME_SCOPE("bench.bisim_large.fixpoint");
      const Partition p = graded ? coarsest_graded_bisimulation(batch_models[i])
                                 : coarsest_bisimulation(batch_models[i]);
      blocks[i] = p.num_blocks;
      rounds[i] = p.rounds;
    }, 1);
    const double ms = timer.ms();
    long long total_blocks = 0;
    int max_rounds = 0;
    for (std::size_t i = 0; i < batch_models.size(); ++i) {
      total_blocks += blocks[i];
      if (rounds[i] > max_rounds) max_rounds = rounds[i];
    }
    std::printf("fixpoint batch %-8s n=%-6d batch=%-3d mean blocks %.1f max rounds %d\n",
                graded ? "graded" : "ungraded", n, batch,
                static_cast<double>(total_blocks) / batch, max_rounds);
    benchutil::report_phase(graded ? "fixpoint graded" : "fixpoint ungraded",
                            ms, batch_models.size());
    wall += ms;
    models += batch_models.size();
  }

  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "bisim_large", 1 << 20, pool.num_threads(), wall,
      wall > 0 ? 1000.0 * static_cast<double>(models) / wall : 0);
  return 0;
}
