// wm_census — the streaming, checkpointed census driver.
//
// Enumerates a candidate family (graphs, consistent port numberings of
// K_n, or Kripke models) modulo isomorphism through the disk-backed
// certificate store (src/store): memory stays flat in the family size,
// and a SIGKILLed run resumes from its last checkpoint with final
// counts identical to an uninterrupted run. The nightly census CI job
// drives this under --budget-secs + actions/cache; the kill/resume
// gate in ci.yml drives it under WM_CRASH_AFTER.
//
//   wm_census --kind graph --n 6 --store /tmp/census --checkpoint /tmp/cp
//             [--resume] [--threads N] [--batch B] [--checkpoint-every K]
//             [--budget-secs S] [--expect CLASSES] [--json out.json]
//
// Kinds: graph (all graphs mod iso, A000088), graph-conn (connected,
// A001349), port (consistent port numberings of K_n mod iso), kripke
// (models on n states, 1 prop, 1 modality, mod iso).
//
// Exit codes: 0 = census ok (complete or budget-paused), 2 = usage,
// 3 = --expect pin mismatch, 4 = structured store/checkpoint error.
//
// Env: WM_CRASH_AFTER=<k> SIGKILLs the process after the k-th
// checkpoint commit (test hook; see store/census.hpp).
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "graph/canonical.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "logic/kripke.hpp"
#include "obs/counters.hpp"
#include "obs/env.hpp"
#include "obs/manifest.hpp"
#include "port/port_numbering.hpp"
#include "store/census.hpp"
#include "util/parallel.hpp"

namespace {

using wm::store::CensusOptions;
using wm::store::CensusResult;
using wm::store::CensusSpace;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --kind graph|graph-conn|port|kripke --n N\n"
      "          --store DIR --checkpoint FILE [--resume]\n"
      "          [--threads N] [--batch B] [--checkpoint-every K]\n"
      "          [--budget-secs S] [--spill-threshold T]\n"
      "          [--expect CLASSES] [--json FILE]\n",
      argv0);
  return 2;
}

std::uint64_t factorial(int k) {
  std::uint64_t f = 1;
  for (int i = 2; i <= k; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

/// Permutation of [0, k) from its Lehmer index in [0, k!).
std::vector<int> permutation_from_index(int k, std::uint64_t idx) {
  std::vector<int> pool(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) pool[static_cast<std::size_t>(i)] = i;
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(k));
  for (int pos = k; pos > 0; --pos) {
    const std::uint64_t radix = factorial(pos - 1);
    const std::size_t pick = static_cast<std::size_t>(idx / radix);
    idx %= radix;
    perm.push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return perm;
}

/// Consistent port numberings of K_n: one permutation of the n-1
/// neighbours per node (out == in), indexed in mixed radix base (n-1)!.
CensusSpace port_census_space(int n) {
  CensusSpace space;
  space.kind = "port-kn-n" + std::to_string(n);
  const std::uint64_t per_node = factorial(n - 1);
  space.count = 1;
  for (int v = 0; v < n; ++v) space.count *= per_node;
  space.classify = [n, per_node](std::uint64_t idx)
      -> std::optional<std::string> {
    const wm::Graph g = wm::complete_graph(n);
    std::vector<std::vector<int>> ports(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      const std::uint64_t code = idx % per_node;
      idx /= per_node;
      std::vector<int> perm = permutation_from_index(n - 1, code);
      for (int& p : perm) p += 1;  // ports are 1-based
      ports[static_cast<std::size_t>(v)] = std::move(perm);
    }
    const wm::PortNumbering p =
        wm::PortNumbering::from_permutations(g, ports, ports);
    return wm::canonical_certificate(p);
  };
  return space;
}

/// Kripke models on s states, 1 proposition, 1 modality: s*s relation
/// bits then s valuation bits, 2^(s^2+s) candidates.
CensusSpace kripke_census_space(int s) {
  CensusSpace space;
  space.kind = "kripke-n" + std::to_string(s);
  space.count = 1ULL << (s * s + s);
  space.classify = [s](std::uint64_t idx) -> std::optional<std::string> {
    wm::KripkeModel k(s, 1);
    const wm::Modality box{0, 0};
    k.ensure_relation(box);
    for (int from = 0; from < s; ++from) {
      for (int to = 0; to < s; ++to) {
        if (idx & 1ULL << (from * s + to)) k.add_edge(box, from, to);
      }
    }
    for (int st = 0; st < s; ++st) {
      if (idx & 1ULL << (s * s + st)) k.set_prop(1, st);  // props are 1-based
    }
    return wm::canonical_certificate(k);
  };
  return space;
}

void append_json_field(std::string& out, const char* name, std::uint64_t v,
                       bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += name;
  out += "\": ";
  out += std::to_string(v);
}

long max_rss_kb() {
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  std::string kind_name, store_dir, checkpoint_path, json_path;
  int n = -1;
  int threads = 0;
  std::uint64_t expect = 0;
  bool have_expect = false;
  CensusOptions opts;
  opts.batch = 1u << 14;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--kind") {
      kind_name = value();
    } else if (arg == "--n") {
      n = std::atoi(value());
    } else if (arg == "--store") {
      store_dir = value();
    } else if (arg == "--checkpoint") {
      checkpoint_path = value();
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--threads") {
      threads = std::atoi(value());
    } else if (arg == "--batch") {
      opts.batch = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--checkpoint-every") {
      opts.checkpoint_every = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--budget-secs") {
      opts.budget_secs = std::atof(value());
    } else if (arg == "--spill-threshold") {
      opts.store.spill_threshold = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--expect") {
      expect = std::strtoull(value(), nullptr, 10);
      have_expect = true;
    } else if (arg == "--json") {
      json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (kind_name.empty() || n < 1 || store_dir.empty() ||
      checkpoint_path.empty()) {
    return usage(argv[0]);
  }
  if (const char* crash = std::getenv("WM_CRASH_AFTER")) {
    opts.crash_after = std::strtoull(crash, nullptr, 10);
  }
  opts.checkpoint_path = checkpoint_path;

  CensusSpace space;
  wm::EnumerateOptions eopts;
  if (kind_name == "graph") {
    eopts.connected_only = false;
    space = wm::graph_census_space(n, eopts);
  } else if (kind_name == "graph-conn") {
    eopts.connected_only = true;
    eopts.min_degree = 0;
    space = wm::graph_census_space(n, eopts);
  } else if (kind_name == "port") {
    if (n < 2) return usage(argv[0]);
    space = port_census_space(n);
  } else if (kind_name == "kripke") {
    if (n * n + n > 62) return usage(argv[0]);
    space = kripke_census_space(n);
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind_name.c_str());
    return usage(argv[0]);
  }

  wm::ThreadPool pool(threads);
  CensusResult result;
  const auto start = std::chrono::steady_clock::now();
  try {
    result = wm::store::run_census(space, store_dir, &pool, opts);
  } catch (const wm::store::StoreError& e) {
    std::fprintf(stderr, "wm_census: %s\n", e.what());
    return 4;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // The "results" object is the cross-run determinism contract: every
  // field is a pure function of (kind, n, batch) — identical for an
  // uninterrupted run and any interrupted-then-resumed sequence. The
  // CI kill/resume gate diffs exactly this object. Process-local facts
  // (checkpoints this run, RSS, counters) live outside it.
  std::string results = "{\"kind\": \"" + result.kind + "\"";
  append_json_field(results, "n", static_cast<std::uint64_t>(n));
  append_json_field(results, "space", result.space);
  append_json_field(results, "scanned", result.scanned);
  append_json_field(results, "admissible", result.admissible);
  append_json_field(results, "classes", result.classes);
  append_json_field(results, "batches", result.batches);
  append_json_field(results, "store_keys",
                    result.store.sealed_keys + result.store.front_keys);
  results += ", \"complete\": ";
  results += result.complete ? "true" : "false";
  results += "}";

  // BENCH-convention envelope (name/n/threads/wall_ms/metrics/manifest)
  // so tools/bench_trend.py folds census runs into the nightly trend
  // table beside the benches. bench_diff.py never sees these files.
  char wall_buf[32];
  std::snprintf(wall_buf, sizeof wall_buf, "%.3f", wall_ms);
  std::string out = "{\"name\": \"census-" + result.kind + "\"";
  append_json_field(out, "n", static_cast<std::uint64_t>(n));
  append_json_field(out, "threads",
                    static_cast<std::uint64_t>(pool.num_threads()));
  out += ", \"wall_ms\": ";
  out += wall_buf;
  out += ", \"graphs_per_sec\": 0.0, \"results\": " + results;
  out += ", \"run\": {";
  append_json_field(out, "checkpoints", result.checkpoints, /*first=*/true);
  out += ", \"resumed\": ";
  out += result.resumed ? "true" : "false";
  append_json_field(out, "segments", result.store.segments);
  append_json_field(out, "generation", result.store.generation);
  append_json_field(out, "spills", result.store.spills);
  append_json_field(out, "compactions", result.store.compactions);
  append_json_field(out, "bytes_on_disk", result.store.bytes_on_disk);
  append_json_field(out, "max_rss_kb",
                    static_cast<std::uint64_t>(max_rss_kb()));
  out += "}";
  out += ", \"metrics\": {\"work\": " +
         wm::obs::counters_json(wm::obs::CounterKind::kWork);
  out += ", \"info\": " + wm::obs::counters_json(wm::obs::CounterKind::kInfo);
  out += "}, \"manifest\": " + wm::obs::manifest_json(pool.num_threads());
  out += "}\n";

  std::fputs(out.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << out;
    if (!f) {
      std::fprintf(stderr, "wm_census: cannot write %s\n", json_path.c_str());
      return 4;
    }
  }

  std::fprintf(stderr,
               "census %s: %llu classes / %llu admissible / %llu scanned%s\n",
               result.kind.c_str(),
               static_cast<unsigned long long>(result.classes),
               static_cast<unsigned long long>(result.admissible),
               static_cast<unsigned long long>(result.scanned),
               result.complete ? "" : " [paused: budget]");

  if (have_expect && result.complete && result.classes != expect) {
    std::fprintf(stderr,
                 "wm_census: pin mismatch: expected %llu classes, got %llu\n",
                 static_cast<unsigned long long>(expect),
                 static_cast<unsigned long long>(result.classes));
    return 3;
  }
  if (have_expect && !result.complete) {
    std::fprintf(stderr,
                 "wm_census: note: --expect not checked (census paused)\n");
  }
  return 0;
}
