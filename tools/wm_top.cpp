// wm_top: a polling terminal dashboard for a running wm_serve daemon.
//
//   wm_top [--host H] [--port P] [--interval S] [--once]
//
// Each poll opens a TCP connection, sends {"op": "metrics"}, and renders
// the Prometheus exposition from result.text: per-endpoint request
// totals, windowed request rates, cache hit ratios, and windowed latency
// quantiles, plus the memo-cache gauges. --once polls a single time,
// prints one frame without clearing the screen, and exits non-zero on
// any failure — that is the CI mode (ci.yml runs it against the smoke
// daemon). Loop mode redraws every --interval seconds until ^C.
//
// The dashboard deliberately consumes the *exposition text* rather than
// the JSON stats reply: every release exercises the scrape format the
// way an external Prometheus would read it.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/json.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--interval S] [--once]\n",
               argv0);
  return 2;
}

/// One metric sample: family name + sorted label pairs -> value.
using Labels = std::map<std::string, std::string>;
struct Sample {
  std::string name;
  Labels labels;
  double value = 0;
};

/// Parses one `name{labels} value` line (comments return false). The
/// exposition writes plain token label values, so no escape handling.
bool parse_sample(const std::string& line, Sample& out) {
  if (line.empty() || line[0] == '#') return false;
  std::size_t name_end = line.find_first_of("{ ");
  if (name_end == std::string::npos) return false;
  out.name = line.substr(0, name_end);
  out.labels.clear();
  std::size_t pos = name_end;
  if (line[pos] == '{') {
    const std::size_t close = line.find('}', pos);
    if (close == std::string::npos) return false;
    std::string inside = line.substr(pos + 1, close - pos - 1);
    std::size_t p = 0;
    while (p < inside.size()) {
      const std::size_t eq = inside.find("=\"", p);
      if (eq == std::string::npos) return false;
      const std::size_t endq = inside.find('"', eq + 2);
      if (endq == std::string::npos) return false;
      out.labels[inside.substr(p, eq - p)] =
          inside.substr(eq + 2, endq - eq - 2);
      p = endq + 1;
      if (p < inside.size() && inside[p] == ',') ++p;
    }
    pos = close + 1;
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  const std::string v = line.substr(pos);
  if (v == "+Inf") {
    out.value = 1e308;
    return true;
  }
  char* end = nullptr;
  out.value = std::strtod(v.c_str(), &end);
  return end != v.c_str();
}

/// Sends one request line and reads one newline-terminated reply.
bool request_reply(const std::string& host, int port,
                   const std::string& request, std::string& reply) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return false;
  }
  const std::string line = request + "\n";
  const char* data = line.data();
  std::size_t len = line.size();
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  reply.clear();
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
    if (reply.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  const std::size_t nl = reply.find('\n');
  if (nl == std::string::npos) return false;
  reply.resize(nl);
  return true;
}

double find_value(const std::vector<Sample>& samples, const std::string& name,
                  const Labels& labels) {
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  return 0;
}

/// One dashboard frame from the exposition text. False when the text
/// contains no parsable sample at all (daemon gone / wrong endpoint).
bool render(const std::string& host, int port, const std::string& text) {
  std::vector<Sample> samples;
  std::set<std::string> endpoints;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    Sample s;
    if (parse_sample(text.substr(start, nl - start), s)) {
      const auto ep = s.labels.find("endpoint");
      if (ep != s.labels.end() && s.name == "serve_requests_total") {
        endpoints.insert(ep->second);
      }
      samples.push_back(std::move(s));
    }
    start = nl + 1;
  }
  if (samples.empty()) return false;

  const double win = find_value(samples, "wm_window_seconds", {});
  std::printf("wm_top — %s:%d — window %.1fs\n", host.c_str(), port, win);
  std::printf("%-12s %10s %10s %8s %10s %10s\n", "endpoint", "total", "req/s",
              "hit%", "p50_ms", "p99_ms");
  for (const std::string& ep : endpoints) {
    const Labels l{{"endpoint", ep}};
    const double total = find_value(samples, "serve_requests_total", l);
    const double rps =
        find_value(samples, "wm_window_requests_per_second", l);
    const double hits = find_value(samples, "serve_cache_hits_total", l);
    const double misses = find_value(samples, "serve_cache_misses_total", l);
    const double hit_pct =
        hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0;
    const double p50 =
        find_value(samples, "wm_window_request_duration_seconds",
                   {{"endpoint", ep}, {"quantile", "0.5"}}) *
        1000.0;
    const double p99 =
        find_value(samples, "wm_window_request_duration_seconds",
                   {{"endpoint", ep}, {"quantile", "0.99"}}) *
        1000.0;
    std::printf("%-12s %10.0f %10.2f %7.1f%% %10.3f %10.3f\n", ep.c_str(),
                total, rps, hit_pct, p50, p99);
  }
  std::printf("cache: entries %.0f/%.0f  evictions %.0f  bypasses %.0f\n",
              find_value(samples, "serve_cache_entries", {}),
              find_value(samples, "serve_cache_capacity", {}),
              find_value(samples, "serve_cache_evictions_total", {}),
              find_value(samples, "serve_cache_bypasses_total", {}));
  std::fflush(stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7414;
  double interval = 2.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_arg = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(usage(argv[0]));
      return argv[++i];
    };
    if (a == "--host") {
      host = next_arg();
    } else if (a == "--port") {
      port = std::atoi(next_arg());
    } else if (a == "--interval") {
      interval = std::atof(next_arg());
      if (interval <= 0) return usage(argv[0]);
    } else if (a == "--once") {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (port <= 0 || port > 65535) return usage(argv[0]);

  for (;;) {
    std::string reply;
    if (!request_reply(host, port, "{\"op\": \"metrics\"}", reply)) {
      std::fprintf(stderr, "wm_top: cannot reach %s:%d\n", host.c_str(),
                   port);
      if (once) return 1;
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
      continue;
    }
    std::string text;
    try {
      const wm::serve::Json j = wm::serve::parse_json(reply);
      const wm::serve::Json* ok = j.find("ok");
      const wm::serve::Json* result = j.find("result");
      const wm::serve::Json* t =
          result != nullptr ? result->find("text") : nullptr;
      if (ok == nullptr || !ok->is_bool() || !ok->as_bool() || t == nullptr ||
          !t->is_string()) {
        throw wm::serve::JsonError("metrics reply lacks result.text");
      }
      text = t->as_string();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wm_top: bad metrics reply: %s\n", e.what());
      if (once) return 1;
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
      continue;
    }
    if (!once) std::printf("\x1b[2J\x1b[H");  // clear, home
    if (!render(host, port, text)) {
      std::fprintf(stderr, "wm_top: exposition contained no samples\n");
      if (once) return 1;
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}
