#include "core/decision.hpp"

#include <limits>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/visitor.hpp"

namespace wm {

namespace {

/// |Y|^blocks with saturation (the budget check rejects anything large,
/// so saturation only guards the arithmetic, never a real scan).
std::uint64_t saturating_pow(std::uint64_t base, int exp) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t acc = 1;
  for (int i = 0; i < exp; ++i) {
    if (base != 0 && acc > kMax / base) return kMax;
    acc *= base;
  }
  return acc;
}

/// Assignment index -> block colouring, mixed radix with block 0 as the
/// least significant digit — precisely the order the sequential odometer
/// enumerates, so index order IS odometer order.
void colouring_for_index(std::uint64_t a, const std::vector<int>& alphabet,
                         std::vector<int>& colour) {
  const std::uint64_t y = alphabet.size();
  for (std::size_t b = 0; b < colour.size(); ++b) {
    colour[b] = alphabet[static_cast<std::size_t>(a % y)];
    a /= y;
  }
}

}  // namespace

Decision decide_solvable(const Problem& problem,
                         const std::vector<PortNumbering>& scope,
                         ProblemClass c, const DecisionOptions& opts) {
  WM_TRACE_SCOPE("decision");
  WM_TIME_SCOPE("decision.decide");
  WM_COUNT(decision.calls);
  const Variant variant = kripke_variant_for(c);
  const bool graded = graded_logic_for(c);

  int delta = opts.delta;
  if (delta < 0) {
    delta = 0;
    for (const PortNumbering& p : scope) {
      delta = std::max(delta, p.graph().max_degree());
    }
  }

  // Joint model and per-instance state offsets. The per-instance Kripke
  // builds are independent: the visitor runs them into index-ordered
  // slots; the fold below is sequential either way, so the state
  // numbering (and hence every block id) is thread-count-invariant.
  ParallelVisitor visitor(opts.pool);
  std::vector<KripkeModel> parts(scope.size(), KripkeModel(0, 0));
  visitor.for_each(scope.size(), [&](std::uint64_t i) {
    parts[i] = kripke_from_graph(scope[i], variant, delta);
  });
  KripkeModel joint(0, 0);
  std::vector<int> offset;
  for (const KripkeModel& part : parts) {
    offset.push_back(joint.num_states());
    joint = KripkeModel::disjoint_union(joint, part);
  }

  const Partition part = graded
                             ? coarsest_graded_bisimulation(joint, opts.rounds)
                             : coarsest_bisimulation(joint, opts.rounds);
  Decision decision;
  decision.blocks = part.num_blocks;
  WM_COUNT_ADD(decision.blocks, part.num_blocks);

  const std::vector<int> alphabet = problem.output_alphabet();
  const std::uint64_t combos =
      saturating_pow(alphabet.size(), part.num_blocks);
  if (combos > opts.max_assignments) {
    throw DecisionBudgetError(
        "decide_solvable: |Y|^blocks exceeds the assignment budget (" +
        std::to_string(part.num_blocks) + " blocks)");
  }

  auto outputs_valid = [&](const std::vector<int>& colour) {
    for (std::size_t i = 0; i < scope.size(); ++i) {
      const Graph& g = scope[i].graph();
      std::vector<int> out(static_cast<std::size_t>(g.num_nodes()));
      for (int v = 0; v < g.num_nodes(); ++v) {
        out[v] = colour[part.block[offset[i] + v]];
      }
      if (!problem.valid(g, out)) return false;
    }
    return true;
  };

  // Liveness for the |Y|^blocks colouring scan. Ticks from the
  // speculative parallel predicate are deliberate: progress counts
  // candidates *evaluated* (timing-dependent, like any rate), never
  // feeding the work counters the regression gate reads.
  obs::ProgressTask progress("decision.scan", combos);

  // Lowest-witness contract of find_first == the first assignment a
  // sequential odometer would accept, so the decision bit AND the
  // colouring AND assignments_tried are identical at any worker count.
  const auto hit = visitor.find_first(0, combos, [&](std::uint64_t a) {
    progress.tick();
    std::vector<int> colour(static_cast<std::size_t>(part.num_blocks));
    colouring_for_index(a, alphabet, colour);
    return outputs_valid(colour);
  });
  if (hit) {
    decision.solvable = true;
    decision.block_output.resize(static_cast<std::size_t>(part.num_blocks));
    colouring_for_index(*hit, alphabet, decision.block_output);
    decision.assignments_tried = static_cast<std::size_t>(*hit) + 1;
  } else {
    decision.assignments_tried = static_cast<std::size_t>(combos);
  }
  // Counted from the deterministic witness, not inside the predicate
  // (which runs on a timing-dependent index set — see visitor.hpp).
  WM_COUNT_ADD(decision.assignments, decision.assignments_tried);
  return decision;
}

}  // namespace wm
