#include "runtime/engine.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"

namespace wm {

namespace {

std::size_t value_size_memo(const Value& v,
                            std::unordered_map<const void*, std::size_t>& memo) {
  if (auto it = memo.find(v.identity()); it != memo.end()) return it->second;
  std::size_t total = 1;
  for (const Value& k : v.items()) total += value_size_memo(k, memo);
  memo.emplace(v.identity(), total);
  return total;
}

}  // namespace

std::size_t value_size(const Value& v) {
  // Simulation histories share structure heavily (Theorems 4 and 8);
  // memoising over node identity makes the size computation linear in
  // the DAG rather than the tree.
  std::unordered_map<const void*, std::size_t> memo;
  return value_size_memo(v, memo);
}

std::string RunSummary::to_string() const {
  std::ostringstream out;
  out << (stopped ? "stopped after " : "aborted at ") << rounds
      << (rounds == 1 ? " round" : " rounds") << " on " << nodes
      << (nodes == 1 ? " node" : " nodes") << "; " << messages_sent
      << (messages_sent == 1 ? " message" : " messages") << " (size total "
      << total_message_size << ", max " << max_message_size << ")";
  return out.str();
}

RunSummary ExecutionResult::summary() const {
  RunSummary s;
  s.stopped = stopped;
  s.rounds = rounds;
  s.nodes = static_cast<int>(final_states.size());
  s.messages_sent = stats.messages_sent;
  s.total_message_size = stats.total_size;
  s.max_message_size = stats.max_size;
  return s;
}

std::vector<int> ExecutionResult::outputs_as_ints() const {
  std::vector<int> out;
  out.reserve(final_states.size());
  for (const Value& s : final_states) {
    out.push_back(static_cast<int>(s.as_int()));
  }
  return out;
}

ExecutionResult execute(const StateMachine& m, const PortNumbering& p,
                        const ExecutionOptions& options) {
  ExecutionContext ctx;
  return execute(m, p, ctx, options);
}

ExecutionResult execute(const StateMachine& m, const PortNumbering& p,
                        ExecutionContext& ctx,
                        const ExecutionOptions& options) {
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  std::vector<Value> state(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) state[v] = m.init(g.degree(v));
  return execute_with_states(m, p, std::move(state), ctx, options);
}

ExecutionResult execute_with_states(const StateMachine& m,
                                    const PortNumbering& p,
                                    std::vector<Value> initial,
                                    const ExecutionOptions& options) {
  ExecutionContext ctx;
  return execute_with_states(m, p, std::move(initial), ctx, options);
}

ExecutionResult execute_with_states(const StateMachine& m,
                                    const PortNumbering& p,
                                    std::vector<Value> initial,
                                    ExecutionContext& ctx,
                                    const ExecutionOptions& options) {
  WM_TRACE_SCOPE("engine.execute");
  WM_TIME_SCOPE("engine.execute");
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  const AlgebraicClass cls = m.algebraic_class();
  if (initial.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("execute_with_states: wrong state count");
  }
  WM_COUNT(engine.runs);

  ExecutionResult result;
  std::vector<Value>& state = ctx.state;
  state = std::move(initial);
  if (options.record_trace) result.trace.push_back(state);

  auto all_stopped = [&]() {
    for (NodeId v = 0; v < n; ++v) {
      if (!m.is_stopping(state[v])) return false;
    }
    return true;
  };

  const Value m0 = Value::unit();
  std::vector<Value>& next = ctx.next;
  next.assign(static_cast<std::size_t>(n), Value());
  // outgoing[v][i-1]: message v sends to its out-port i this round.
  std::vector<std::vector<Value>>& outgoing = ctx.outgoing;
  outgoing.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    outgoing[v].resize(static_cast<std::size_t>(g.degree(v)));
  }

  int t = 0;
  while (!all_stopped()) {
    poll_cancel(options.cancel);
    if (t >= options.max_rounds) {
      result.stopped = false;
      result.rounds = t;
      result.final_states = std::move(state);
      WM_COUNT_ADD(engine.rounds, t);
      WM_COUNT_ADD(engine.messages, result.stats.messages_sent);
      return result;
    }
    ++t;
    // Phase 1: construct outgoing messages. Stopped nodes send m0
    // (the paper extends mu with mu(y, i) = m0 for y in Y).
    for (NodeId v = 0; v < n; ++v) {
      const int d = g.degree(v);
      if (m.is_stopping(state[v])) {
        for (int i = 0; i < d; ++i) outgoing[v][i] = m0;
        continue;
      }
      if (cls.send == SendMode::Broadcast) {
        // Class enforcement: mu evaluated once, replicated to all ports.
        const Value msg = d > 0 ? m.message(state[v], 1) : m0;
        for (int i = 0; i < d; ++i) outgoing[v][i] = msg;
      } else {
        for (int i = 1; i <= d; ++i) outgoing[v][i - 1] = m.message(state[v], i);
      }
    }
    // Phase 2: deliver and transition.
    for (NodeId u = 0; u < n; ++u) {
      if (m.is_stopping(state[u])) {
        next[u] = state[u];  // absorbing
        continue;
      }
      const int d = g.degree(u);
      ValueVec inbox_vec(static_cast<std::size_t>(d));
      for (int i = 1; i <= d; ++i) {
        // a_{t+1}(u, i) = mu(x_t(v), j) with (v, j) = p^{-1}((u, i)).
        const PortRef src = p.backward({u, i});
        inbox_vec[i - 1] = outgoing[src.node][src.index - 1];
      }
      for (const Value& msg : inbox_vec) {
        if (!msg.is_unit()) {
          ++result.stats.messages_sent;
          const std::size_t sz = value_size(msg);
          result.stats.total_size += sz;
          result.stats.max_size = std::max(result.stats.max_size, sz);
        }
      }
      Value inbox;
      switch (cls.receive) {
        case ReceiveMode::Vector:
          inbox = Value::tuple(std::move(inbox_vec));
          break;
        case ReceiveMode::Multiset:
          inbox = multiset_of(inbox_vec);
          break;
        case ReceiveMode::Set:
          inbox = set_of(inbox_vec);
          break;
      }
      next[u] = m.transition(state[u], inbox, d);
    }
    state.swap(next);
    if (options.record_trace) result.trace.push_back(state);
  }

  result.stopped = true;
  result.rounds = t;
  result.final_states = std::move(state);
  WM_COUNT_ADD(engine.rounds, t);
  WM_COUNT_ADD(engine.messages, result.stats.messages_sent);
  return result;
}

}  // namespace wm
