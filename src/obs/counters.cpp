#include "obs/counters.hpp"

namespace wm::obs {

namespace {
thread_local bool g_suppressed = false;
}  // namespace

bool speculation_suppressed() noexcept { return g_suppressed; }

SpeculativeScope::SpeculativeScope() noexcept : prev_(g_suppressed) {
  g_suppressed = true;
}

SpeculativeScope::~SpeculativeScope() { g_suppressed = prev_; }

Registry& Registry::instance() {
  // Leaked singleton: counters are reachable from static-destruction-time
  // code paths (atexit trace flush), so the registry must outlive them.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(std::string_view name, CounterKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), new Counter(kind)).first;
  }
  return *it->second;
}

std::map<std::string, std::uint64_t> Registry::snapshot(
    CounterKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    if (counter->kind() == kind) out.emplace(name, counter->value());
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
}

std::string counters_json(CounterKind kind) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : registry().snapshot(kind)) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += name;
    out += "\": ";
    out += std::to_string(value);
  }
  out += "}";
  return out;
}

}  // namespace wm::obs
