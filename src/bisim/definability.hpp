// Definability: which subsets of a Kripke model's state space can a
// modal formula carve out?
//
// Computed semantically: the family of truth-vectors of depth-<=t
// formulas is the Boolean closure of the atoms, iterated t times with
// (graded) diamond pre-images. The expressive-completeness theorem
// behind Section 4 — a set is definable at depth t iff it is a union of
// t-step (g-)bisimilarity classes — becomes an executable identity,
// property-tested against the partition refinement in
// tests/test_definability.cpp.
#pragma once

#include <cstddef>
#include <set>
#include <stdexcept>
#include <vector>

#include "bisim/bisimulation.hpp"
#include "logic/kripke.hpp"

namespace wm {

class DefinabilityBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// All truth-vectors (one bool per state) realised by formulas of modal
/// depth <= depth in the logic over k's signature (graded: GML/GMML,
/// otherwise ML/MML). depth < 0 iterates to the fixpoint. Throws
/// DefinabilityBudgetError if the family exceeds max_sets.
std::set<std::vector<bool>> definable_sets(const KripkeModel& k, int depth,
                                           bool graded,
                                           std::size_t max_sets = 1u << 20);

/// The reference family: all unions of blocks of the given partition.
/// Throws DefinabilityBudgetError if 2^num_blocks exceeds max_sets.
std::set<std::vector<bool>> unions_of_blocks(const Partition& p, int num_states,
                                             std::size_t max_sets = 1u << 20);

}  // namespace wm
