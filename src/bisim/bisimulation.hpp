// Bisimulation and graded bisimulation (Section 4.2).
//
// The coarsest (graded) bisimulation equivalence of a finite Kripke model
// is computed by partition refinement:
//   - initial blocks = atomic valuation profiles (condition B1),
//   - refine by the *set* of successor blocks per modality (B2/B3), or by
//     the *multiset* of successor blocks for graded bisimulation
//     (B2*/B3*; for equivalence relations, per-block successor counts
//     characterise graded bisimilarity).
// The t-round refinement ("bounded bisimilarity") coincides with
// indistinguishability by formulas of modal depth <= t, which is exactly
// the information a t-round distributed algorithm can gather — the bridge
// the paper uses for all separation results (Corollary 3).
#pragma once

#include <cstdint>
#include <vector>

#include "logic/kripke.hpp"

namespace wm {

/// An equivalence relation on the states of a model: block id per state.
struct Partition {
  std::vector<int> block;  // block[v] in [0, num_blocks)
  int num_blocks = 0;
  /// Number of refinement rounds until the fixpoint (or the cap).
  int rounds = 0;

  bool same_block(int u, int v) const { return block[u] == block[v]; }
  /// States grouped by block, each sorted.
  std::vector<std::vector<int>> blocks() const;
};

/// The B1 partition alone: states grouped by atomic valuation profile,
/// block ids in first-seen state order. Shared by refinement, quotient
/// colouring and the distinguishing-formula base layer so all three agree
/// on the initial blocks. Profiles are packed into one uint64 when the
/// model has at most 64 propositions.
Partition valuation_partition(const KripkeModel& k);

/// Coarsest bisimulation equivalence (ungraded: ML/MML semantics).
/// max_rounds < 0 means refine to the fixpoint.
Partition coarsest_bisimulation(const KripkeModel& k, int max_rounds = -1);

/// Coarsest graded bisimulation equivalence (GML/GMML semantics).
Partition coarsest_graded_bisimulation(const KripkeModel& k, int max_rounds = -1);

/// Scalar reference refinement (full signature pass per round, no
/// worklist, no obs counters). The differential suites pin the production
/// path against these exactly — same block ids, same round count. Do not
/// optimise.
Partition coarsest_bisimulation_reference(const KripkeModel& k,
                                          int max_rounds = -1);
Partition coarsest_graded_bisimulation_reference(const KripkeModel& k,
                                                 int max_rounds = -1);

/// True iff u and v lie in the same block of the coarsest (graded)
/// bisimulation of k.
bool are_bisimilar(const KripkeModel& k, int u, int v, bool graded = false);

/// Cross-model bisimilarity via disjoint union: state u of a ~ state v of b.
bool bisimilar_across(const KripkeModel& a, int u, const KripkeModel& b, int v,
                      bool graded = false);

/// Verifies that a partition is a bisimulation equivalence: B1 (atoms
/// agree within blocks) and, for every pair in a block, successor-block
/// *sets* agree per modality (ungraded) — i.e. the literal back-and-forth
/// conditions B2/B3 for the induced relation.
bool verify_bisimulation_partition(const KripkeModel& k, const Partition& p);

/// Graded variant: successor-block *counts* must agree per modality,
/// which for equivalence relations is equivalent to B2*/B3*.
bool verify_graded_bisimulation_partition(const KripkeModel& k, const Partition& p);

/// Literal check that an arbitrary relation Z (set of state pairs) is a
/// bisimulation between k and itself: conditions B1, B2, B3 verbatim.
bool is_bisimulation_relation(const KripkeModel& k,
                              const std::vector<std::pair<int, int>>& z);

}  // namespace wm
