#include "obs/env.hpp"

#include "obs/manifest.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace wm::obs {

void init_from_env() {
  mark_process_start();
  trace_init_from_env();
  progress_init_from_env();
}

}  // namespace wm::obs
