file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_compile.dir/bench_thm2_compile.cpp.o"
  "CMakeFiles/bench_thm2_compile.dir/bench_thm2_compile.cpp.o.d"
  "bench_thm2_compile"
  "bench_thm2_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
