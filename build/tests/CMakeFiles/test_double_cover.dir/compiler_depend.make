# Empty compiler generated dependencies file for test_double_cover.
# This may be replaced when dependencies are built.
