#include "transform/beeping.hpp"

#include <gtest/gtest.h>

#include "algorithms/machines.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

/// An SB machine with a two-letter alphabet: broadcast the degree
/// parity; output 1 iff BOTH parities are present among the neighbours.
/// Ignores m0 in the received set (the beeping-simulation precondition).
LambdaMachine parity_diversity_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int d) { return Value::pair(Value::str("p"), Value::integer(d % 2)); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    const bool zero = inbox.contains(Value::integer(0));
    const bool one = inbox.contains(Value::integer(1));
    return Value::integer(zero && one ? 1 : 0);
  };
  return m;
}

TEST(Beeping, AdapterIsSetBroadcast) {
  const auto m = as_state_machine(beep_wave_machine(3, 4));
  EXPECT_EQ(m->algebraic_class(), AlgebraicClass::set_broadcast());
}

TEST(Beeping, WaveComputesBfsDistanceFromSources) {
  // Star: the centre (degree 3) is the source; leaves are at distance 1.
  const Graph g = star_graph(3);
  const auto m = as_state_machine(beep_wave_machine(3, 4));
  const auto r = execute(*m, PortNumbering::identity(g));
  ASSERT_TRUE(r.stopped);
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 1, 1, 1}));
}

TEST(Beeping, WaveOnPathFromEndpoints) {
  // Path: degree-1 endpoints are sources; outputs are distances to the
  // nearer endpoint, capped by the round budget.
  const Graph g = path_graph(6);
  const auto m = as_state_machine(beep_wave_machine(1, 6));
  const auto r = execute(*m, PortNumbering::identity(g));
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 1, 2, 2, 1, 0}));
}

TEST(Beeping, WaveRespectsRoundCap) {
  const Graph g = path_graph(8);
  const auto m = as_state_machine(beep_wave_machine(1, 2));
  const auto r = execute(*m, PortNumbering::identity(g));
  // Nodes further than 2 hops never hear: output rounds + 1 = 3.
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 1, 2, 3, 3, 2, 1, 0}));
}

TEST(Beeping, SimulationValidatesInput) {
  auto sb = std::make_shared<LambdaMachine>(parity_diversity_machine());
  EXPECT_THROW(to_beeping_machine(sb, {}), std::invalid_argument);
  EXPECT_THROW(to_beeping_machine(sb, {Value::unit()}), std::invalid_argument);
  EXPECT_THROW(
      to_beeping_machine(sb, {Value::integer(0), Value::integer(0)}),
      std::invalid_argument);
  EXPECT_THROW(to_beeping_machine(odd_odd_machine(), {Value::integer(0)}),
               std::invalid_argument);  // MB, not SB
}

TEST(Beeping, SimulatesSbMachineWithRoundBlowup) {
  auto sb = std::make_shared<LambdaMachine>(parity_diversity_machine());
  const auto beeping =
      to_beeping_machine(sb, {Value::integer(0), Value::integer(1)});
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_connected_graph(9, 4, 4, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto ra = execute(*sb, p);
    const auto rb = execute(*beeping, p);
    ASSERT_TRUE(rb.stopped);
    EXPECT_EQ(ra.final_states, rb.final_states);
    EXPECT_EQ(rb.rounds, ra.rounds * 2);  // |alphabet| = 2 slots per round
  }
}

TEST(Beeping, SimulatesIsolatedDetector) {
  // The SBo isolated detector uses a one-letter alphabet — the beeping
  // simulation degenerates to "did anyone beep".
  const auto beeping =
      to_beeping_machine(isolated_detector_machine(), {Value::integer(0)});
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);  // node 3 isolated
  const auto r = execute(*beeping, PortNumbering::identity(g));
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 0, 0, 1}));
  EXPECT_EQ(r.rounds, 1);
}

/// A 2-round SB machine: round 1 broadcasts the degree parity; round 2
/// broadcasts whether both parities were heard; output 1 iff some
/// neighbour announced diversity. Exercises multi-round beeping
/// simulation with a changing alphabet usage.
LambdaMachine diversity_echo_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int d) {
    return Value::pair(Value::str("r1"), Value::integer(d % 2));
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value& s, const Value& inbox, int) -> Value {
    if (s.at(0).as_str() == "r1") {
      const bool both = inbox.contains(Value::integer(0)) &&
                        inbox.contains(Value::integer(1));
      return Value::pair(Value::str("r2"), Value::integer(both ? 1 : 0));
    }
    return Value::integer(inbox.contains(Value::integer(1)) ? 1 : 0);
  };
  return m;
}

TEST(Beeping, MultiRoundSimulation) {
  auto sb = std::make_shared<LambdaMachine>(diversity_echo_machine());
  const auto beeping =
      to_beeping_machine(sb, {Value::integer(0), Value::integer(1)});
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 3, 4, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto ra = execute(*sb, p);
    const auto rb = execute(*beeping, p);
    EXPECT_EQ(ra.final_states, rb.final_states);
    EXPECT_EQ(rb.rounds, ra.rounds * 2);
    EXPECT_EQ(ra.rounds, 2);
  }
}

TEST(Beeping, SingleBitMessagesOnly) {
  // The simulation's wire format really is one bit: every non-m0 message
  // has structural size 1 and value Int 1.
  auto sb = std::make_shared<LambdaMachine>(parity_diversity_machine());
  const auto beeping =
      to_beeping_machine(sb, {Value::integer(0), Value::integer(1)});
  const auto r = execute(*beeping, PortNumbering::identity(cycle_graph(5)));
  EXPECT_EQ(r.stats.max_size, 1u);
}

}  // namespace
}  // namespace wm
