// Sharded single-flight memo-cache for the serve layer.
//
// Maps request cache keys (canonical certificates plus endpoint
// parameters — see serve/protocol.cpp for how keys are built so that
// sharing results across clients is sound) to serialised result blobs.
// Layout follows util/lockfree_set.hpp's open-addressing style —
// power-of-two slot arrays, avalanche-mixed triangular probing — but
// the value type is a variable-length blob and entries are evicted, so
// slots live under a per-shard mutex instead of CAS claims: eviction
// and single-flight waiting need states a lock-free slot cannot
// round-trip cheaply, and the blobs make copies under contention more
// expensive than the lock.
//
// Semantics:
//
//  - *Single flight*: the first requester of an absent key claims a
//    kComputing slot and runs `compute` outside the lock; concurrent
//    requesters of the same key block on the shard's condition variable
//    and share the published blob. A waiter counts as a *hit* — so
//    given capacity >= distinct keys, hits == total - distinct at any
//    thread count, which is what lets the serve endpoints export
//    hit/miss tallies as deterministic work counters.
//
//  - *Capacity-bounded second-chance eviction*: each shard caps its
//    live (kReady + kComputing) entries; inserting past the cap sweeps
//    a clock hand over the slots, clearing `referenced` on the first
//    pass and evicting the first unreferenced kReady entry on the
//    second. kComputing entries are never evicted (a waiter holds a
//    reference to the key). Evicted slots become kTombstone so probe
//    chains stay intact; when tombstones crowd the table the shard
//    rehashes in place (kReady/kComputing survive, tombstones drop).
//
//  - *Bypass*: if every live entry of a full shard is kComputing there
//    is nothing to evict; the request computes without caching (counted
//    as a miss plus a `bypasses` tally) rather than blocking on cache
//    admission.
//
//  - Exceptions from `compute` revert the claimed slot to kTombstone,
//    wake the waiters (who then race to claim the key themselves) and
//    propagate — a failed computation is never cached.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/hash_mix.hpp"

namespace wm::serve {

class MemoCache {
 public:
  /// `capacity` bounds live entries across all shards (>= 1 enforced);
  /// `shards` 0 picks 8. Tests pass shards = 1 for deterministic
  /// eviction-order goldens.
  explicit MemoCache(std::size_t capacity, int shards = 0);

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  struct Result {
    std::string value;
    bool hit = false;  // served from cache (including a single-flight wait)
  };

  /// Returns the blob for `key`, running `compute` exactly once per
  /// cached lifetime of the key (see single-flight above). `compute`
  /// runs outside all cache locks.
  Result get_or_compute(const std::string& key,
                        const std::function<std::string()>& compute);

  /// The blob if currently cached (kReady); does not wait, does not
  /// count as a hit, does not set the reference bit. Test hook.
  std::optional<std::string> peek(const std::string& key) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bypasses = 0;
    std::size_t entries = 0;  // live (kReady + kComputing) right now
    std::size_t capacity = 0;
  };
  Stats stats() const;

 private:
  enum class State : std::uint8_t { kEmpty, kTombstone, kComputing, kReady };

  struct Slot {
    State state = State::kEmpty;
    bool referenced = false;
    std::uint64_t hash = 0;
    std::string key;
    std::string value;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::vector<Slot> slots;
    std::size_t live = 0;       // kComputing + kReady
    std::size_t occupied = 0;   // live + tombstones
    std::size_t clock = 0;      // second-chance hand
  };

  static std::uint64_t key_hash(const std::string& key);
  Shard& shard_for(std::uint64_t hash);
  const Shard& shard_for(std::uint64_t hash) const;

  /// Probe for `key`; returns the slot index holding it, or the index of
  /// the insertion candidate (first tombstone on the chain, else the
  /// terminating empty) with `found` false. Caller holds the shard lock.
  std::size_t probe(const Shard& s, std::uint64_t hash,
                    const std::string& key, bool& found) const;

  /// Second-chance clock sweep; true if a kReady entry was evicted.
  bool evict_one(Shard& s);

  /// Rebuilds the shard's table dropping tombstones. Slot indices move;
  /// everyone re-probes by key after re-acquiring the lock.
  void rehash(Shard& s);

  std::size_t shard_capacity_;  // live-entry cap per shard
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bypasses_{0};
};

}  // namespace wm::serve
