# Empty compiler generated dependencies file for vertex_cover.
# This may be replaced when dependencies are built.
