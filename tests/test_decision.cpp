#include "core/decision.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "problems/catalogue.hpp"

namespace wm {
namespace {

std::vector<PortNumbering> star_scope(int kmax) {
  // Identity numberings only: refinement in the ported views separates
  // each leaf (distinct centre ports), so the block count — and with it
  // the exhaustive colouring space — stays small.
  std::vector<PortNumbering> scope;
  for (int k = 2; k <= kmax; ++k) {
    scope.push_back(PortNumbering::identity(star_graph(k)));
  }
  return scope;
}

TEST(Decision, Theorem11DecidedMechanically) {
  // Leaf-in-star: solvable in SV at one round, unsolvable in VB at ANY
  // number of rounds (fixpoint refinement) — Theorem 11 as computation.
  const auto problem = leaf_in_star_problem();
  const auto scope = star_scope(4);
  {
    DecisionOptions opts;
    opts.rounds = 1;
    const Decision d = decide_solvable(*problem, scope, ProblemClass::SV, opts);
    EXPECT_TRUE(d.solvable);
  }
  {
    const Decision d = decide_solvable(*problem, scope, ProblemClass::VB);
    EXPECT_FALSE(d.solvable);
    EXPECT_GT(d.assignments_tried, 0u);
  }
  // ... and in the broadcast-weaker classes too.
  for (const ProblemClass c : {ProblemClass::MB, ProblemClass::SB}) {
    EXPECT_FALSE(decide_solvable(*problem, scope, c).solvable);
  }
  // Vector classes solve it as well (SV ⊆ MV ⊆ VV).
  for (const ProblemClass c : {ProblemClass::MV, ProblemClass::VV}) {
    EXPECT_TRUE(decide_solvable(*problem, scope, c).solvable);
  }
}

TEST(Decision, ZeroRoundsCannotPickALeaf) {
  // At t = 0 only degrees are known — the leaves are indistinguishable,
  // so even SV fails; one round is genuinely needed.
  DecisionOptions opts;
  opts.rounds = 0;
  const Decision d = decide_solvable(*leaf_in_star_problem(), star_scope(3),
                                     ProblemClass::SV, opts);
  EXPECT_FALSE(d.solvable);
}

TEST(Decision, MisUnsolvableOnSymmetricCycleEvenInVVc) {
  // Section 3.1: the MIS witness scope — a symmetric consistent cycle.
  const SeparationWitness w = mis_cycle_witness(6);
  const Decision d = decide_solvable(*w.problem, {w.numbering},
                                     ProblemClass::VVc);
  EXPECT_FALSE(d.solvable);
  EXPECT_EQ(d.blocks, 1);
  // On an asymmetric numbering of a path, MIS IS solvable (all blocks
  // distinct lets the colouring pick any maximal independent set).
  const Decision d2 = decide_solvable(*maximal_independent_set_problem(),
                                      {PortNumbering::identity(path_graph(4))},
                                      ProblemClass::VV);
  EXPECT_TRUE(d2.solvable);
}

TEST(Decision, ThreeColouringOfOddCycleNeedsSymmetryBreaking) {
  // A symmetric odd cycle cannot be 3-coloured anonymously (one block,
  // but adjacent nodes would share the colour).
  const Graph g = cycle_graph(5);
  const PortNumbering p = PortNumbering::symmetric_regular(g);
  const Decision d = decide_solvable(*three_colouring_problem(), {p},
                                     ProblemClass::VVc);
  EXPECT_FALSE(d.solvable);
  // With an asymmetric numbering the fixpoint refinement separates all
  // nodes and a valid colouring assignment exists.
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const PortNumbering q = PortNumbering::random(g, rng);
    const Decision dq =
        decide_solvable(*three_colouring_problem(), {q}, ProblemClass::VV);
    if (dq.blocks == g.num_nodes()) {
      EXPECT_TRUE(dq.solvable);
    }
  }
}

TEST(Decision, Theorem17MechanisedOnFig9a) {
  // Symmetry breaking on the class-G graph: solvable in VV on any
  // consistent numbering (local types split the nodes), unsolvable on
  // the Lemma 15 symmetric numbering — which is exactly why VVc (which
  // only ever faces consistent numberings) is stronger than VV.
  const auto problem = symmetry_break_problem();
  const Graph g = fig9a_graph();
  Rng rng(1);
  {
    const std::vector<PortNumbering> consistent{
        PortNumbering::random_consistent(g, rng)};
    const Decision d = decide_solvable(*problem, consistent, ProblemClass::VV);
    EXPECT_TRUE(d.solvable);
  }
  {
    const std::vector<PortNumbering> symmetric{
        PortNumbering::symmetric_regular(g)};
    const Decision d = decide_solvable(*problem, symmetric, ProblemClass::VV);
    EXPECT_FALSE(d.solvable);
    EXPECT_EQ(d.blocks, 1);
  }
}

TEST(Decision, SolutionAssignmentIsReturned) {
  const auto problem = leaf_in_star_problem();
  const auto scope = star_scope(3);
  const Decision d = decide_solvable(*problem, scope, ProblemClass::SV);
  ASSERT_TRUE(d.solvable);
  EXPECT_EQ(static_cast<int>(d.block_output.size()), d.blocks);
}

TEST(Decision, BudgetGuard) {
  // Force a tiny budget: many blocks with a 3-letter alphabet.
  DecisionOptions opts;
  opts.max_assignments = 2;
  EXPECT_THROW(decide_solvable(*three_colouring_problem(),
                               {PortNumbering::identity(path_graph(5))},
                               ProblemClass::VV, opts),
               DecisionBudgetError);
}

TEST(Decision, EulerianDecisionSolvableFromParitiesOnConnectedScope) {
  // On connected graphs, "all degrees even" decides Eulerian-ness; the
  // decision procedure finds the corresponding block colouring at t=0.
  std::vector<PortNumbering> scope;
  for (const Graph& g : {cycle_graph(4), cycle_graph(5), path_graph(4),
                         complete_graph(5), star_graph(3)}) {
    scope.push_back(PortNumbering::identity(g));
  }
  DecisionOptions opts;
  opts.rounds = 0;
  const Decision d = decide_solvable(*eulerian_decision_problem(), scope,
                                     ProblemClass::SB, opts);
  EXPECT_TRUE(d.solvable);
}

}  // namespace
}  // namespace wm
