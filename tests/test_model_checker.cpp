#include "logic/model_checker.hpp"

#include <gtest/gtest.h>

#include "bisim/bisimulation.hpp"
#include "graph/generators.hpp"
#include "logic/random_formula.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

KripkeModel path_model() {
  return kripke_from_graph(PortNumbering::identity(path_graph(3)),
                           Variant::MinusMinus);
}

TEST(ModelChecker, Atoms) {
  const KripkeModel k = path_model();
  EXPECT_EQ(model_check(k, Formula::tru()),
            (std::vector<bool>{true, true, true}));
  EXPECT_EQ(model_check(k, Formula::fls()),
            (std::vector<bool>{false, false, false}));
  // q1 = "degree 1": endpoints.
  EXPECT_EQ(model_check(k, Formula::prop(1)),
            (std::vector<bool>{true, false, true}));
}

TEST(ModelChecker, Connectives) {
  const KripkeModel k = path_model();
  const Formula q1 = Formula::prop(1), q2 = Formula::prop(2);
  EXPECT_EQ(model_check(k, Formula::negate(q1)),
            (std::vector<bool>{false, true, false}));
  EXPECT_EQ(model_check(k, Formula::conj(q1, q2)),
            (std::vector<bool>{false, false, false}));
  EXPECT_EQ(model_check(k, Formula::disj(q1, q2)),
            (std::vector<bool>{true, true, true}));
}

TEST(ModelChecker, DiamondAndBox) {
  const KripkeModel k = path_model();
  // <*,*> q2 — "some neighbour has degree 2": true at the endpoints.
  const Formula dq2 = Formula::diamond({0, 0}, Formula::prop(2));
  EXPECT_EQ(model_check(k, dq2), (std::vector<bool>{true, false, true}));
  // [*,*] q1 — "all neighbours have degree 1": true at the middle node.
  const Formula bq1 = Formula::box({0, 0}, Formula::prop(1));
  EXPECT_EQ(model_check(k, bq1), (std::vector<bool>{false, true, false}));
}

TEST(ModelChecker, GradedDiamonds) {
  const KripkeModel k = kripke_from_graph(
      PortNumbering::identity(star_graph(3)), Variant::MinusMinus);
  // Centre has 3 degree-1 neighbours.
  const Formula g2 = Formula::diamond({0, 0}, Formula::prop(1), 2);
  const Formula g3 = Formula::diamond({0, 0}, Formula::prop(1), 3);
  const Formula g4 = Formula::diamond({0, 0}, Formula::prop(1), 4);
  EXPECT_TRUE(model_check_at(k, g2, 0));
  EXPECT_TRUE(model_check_at(k, g3, 0));
  EXPECT_FALSE(model_check_at(k, g4, 0));
  EXPECT_FALSE(model_check_at(k, g2, 1));  // a leaf has one neighbour
}

TEST(ModelChecker, ModalDepthTwo) {
  const KripkeModel k = path_model();
  // <>(<> q2): "a neighbour has a neighbour of degree 2" — middle node's
  // neighbours (endpoints) each see the middle (degree 2): true at 1;
  // endpoints' neighbour is the middle, which sees no degree-2 node...
  const Formula f =
      Formula::diamond({0, 0}, Formula::diamond({0, 0}, Formula::prop(2)));
  EXPECT_EQ(model_check(k, f), (std::vector<bool>{false, true, false}));
}

TEST(ModelChecker, EmptyRelationDiamondIsFalseBoxIsTrue) {
  KripkeModel k(2, 1);
  k.ensure_relation({0, 0});
  EXPECT_FALSE(model_check_at(k, Formula::diamond({0, 0}, Formula::tru()), 0));
  EXPECT_TRUE(model_check_at(k, Formula::box({0, 0}, Formula::fls()), 0));
}

class CheckerAgreement : public ::testing::TestWithParam<Variant> {};

TEST_P(CheckerAgreement, MemoisedMatchesNaive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
  Rng grng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = random_connected_graph(8, 3, 3, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const KripkeModel k = kripke_from_graph(p, GetParam());
    RandomFormulaOptions opts;
    opts.variant = GetParam();
    opts.delta = g.max_degree();
    opts.num_props = g.max_degree();
    opts.graded = true;
    opts.max_depth = 3;
    const Formula f = random_formula(rng, opts);
    EXPECT_EQ(model_check(k, f), model_check_naive(k, f)) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CheckerAgreement,
                         ::testing::Values(Variant::PlusPlus, Variant::MinusPlus,
                                           Variant::PlusMinus,
                                           Variant::MinusMinus));

class Fact1Property : public ::testing::TestWithParam<Variant> {};

// Fact 1: bisimilar states satisfy the same (ungraded) formulas;
// g-bisimilar states satisfy the same graded formulas.
TEST_P(Fact1Property, BisimilarStatesAgreeOnFormulas) {
  Rng rng(91);
  Rng grng(92);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(9, 3, 4, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const KripkeModel k = kripke_from_graph(p, GetParam());
    for (const bool graded : {false, true}) {
      const Partition part = graded ? coarsest_graded_bisimulation(k)
                                    : coarsest_bisimulation(k);
      RandomFormulaOptions opts;
      opts.variant = GetParam();
      opts.delta = g.max_degree();
      opts.num_props = g.max_degree();
      opts.graded = graded;
      opts.max_depth = 4;
      for (int i = 0; i < 10; ++i) {
        const Formula f = random_formula(rng, opts);
        const auto truth = model_check(k, f);
        for (int u = 0; u < k.num_states(); ++u) {
          for (int v = u + 1; v < k.num_states(); ++v) {
            if (part.same_block(u, v)) {
              EXPECT_EQ(truth[u], truth[v])
                  << "Fact 1 violated by " << f.to_string();
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, Fact1Property,
                         ::testing::Values(Variant::PlusPlus, Variant::MinusPlus,
                                           Variant::PlusMinus,
                                           Variant::MinusMinus));

}  // namespace
}  // namespace wm
