// Regenerates Tables 1 and 2: the prior-work terminology mapped onto
// this library's classes, with the beeping row (Afek et al. /
// Cornejo–Kuhn ≈ SB) backed by a measured simulation: an SB machine run
// natively vs through the single-bit beeping transformation.
#include <cstdio>

#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/beeping.hpp"

namespace {

using namespace wm;

LambdaMachine parity_diversity_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int d) {
    return Value::pair(Value::str("p"), Value::integer(d % 2));
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    return Value::integer(inbox.contains(Value::integer(0)) &&
                                  inbox.contains(Value::integer(1))
                              ? 1
                              : 0);
  };
  return m;
}

}  // namespace

int main() {
  std::printf("=== Table 1: prior-work terminology vs this classification "
              "===\n\n");
  std::printf("  %-22s %-34s\n", "class here", "terms in prior work");
  std::printf("  %-22s %-34s\n", "Vector / VVc",
              "port numbering; local edge labelling; local orientation;");
  std::printf("  %-22s %-34s\n", "",
              "complete port awareness; port-to-port");
  std::printf("  %-22s %-34s\n", "Vector / VV", "input/output port awareness");
  std::printf("  %-22s %-34s\n", "Multiset / MV",
              "output port awareness; wireless in input; mailbox;");
  std::printf("  %-22s %-34s\n", "", "port-to-mailbox");
  std::printf("  %-22s %-34s\n", "Set / SV", "(new in the paper)");
  std::printf("  %-22s %-34s\n", "Broadcast / VB",
              "input port awareness; wireless in output; broadcast-to-port");
  std::printf("  %-22s %-34s\n", "Multiset∩Broadcast / MB",
              "totalistic; wireless; broadcast-to-mailbox;");
  std::printf("  %-22s %-34s\n", "", "mailbox-to-mailbox; network w/o colours");
  std::printf("  %-22s %-34s\n", "Set∩Broadcast / SB", "beeping");

  std::printf("\n=== The beeping row, measured ===\n");
  std::printf("An SB machine (alphabet {0,1}) run natively vs through the\n");
  std::printf("single-bit beeping simulation (1 source round -> |M| beep "
              "slots):\n\n");
  std::printf("%-16s %-8s %-12s %-14s %-12s %-12s\n", "graph", "agree",
              "rounds(SB)", "rounds(beep)", "maxmsg(SB)", "maxmsg(beep)");
  auto sb = std::make_shared<LambdaMachine>(parity_diversity_machine());
  const auto beeping =
      to_beeping_machine(sb, {Value::integer(0), Value::integer(1)});
  Rng rng(11);
  for (const char* name : {"cycle-9", "star-6", "petersen", "grid-3x4",
                           "random-10"}) {
    Graph g;
    if (std::string(name) == "cycle-9") g = cycle_graph(9);
    else if (std::string(name) == "star-6") g = star_graph(6);
    else if (std::string(name) == "petersen") g = petersen_graph();
    else if (std::string(name) == "grid-3x4") g = grid_graph(3, 4);
    else g = random_connected_graph(10, 4, 5, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto ra = execute(*sb, p);
    const auto rb = execute(*beeping, p);
    std::printf("%-16s %-8s %-12d %-14d %-12zu %-12zu\n", name,
                ra.final_states == rb.final_states ? "yes" : "NO", ra.rounds,
                rb.rounds, ra.stats.max_size, rb.stats.max_size);
  }
  std::printf("\nShape check: outputs identical; beeping rounds = |M| x SB\n");
  std::printf("rounds; beeping messages are a single bit.\n");

  std::printf("\n=== Table 2 (summary): how this build differs from prior "
              "work ===\n");
  std::printf(" - no global knowledge: collapses proven with constant\n");
  std::printf("   simulation overhead (bench_thm4/thm8), not |V|-dependent;\n");
  std::printf(" - graph problems, not input-output functions;\n");
  std::printf(" - class-vs-class separations, not individual problems;\n");
  std::printf(" - deterministic synchronous model throughout.\n");
  return 0;
}
