// Algorithm synthesis for anonymous distributed computing.
//
// The full pipeline, every stage a theorem of the paper:
//
//   problem + scope + class
//     -> decide_solvable          (block colouring of the joint refinement)
//     -> characteristic formulas  (Section 4.2 machinery)
//     -> one modal formula        (disjunction over the 1-coloured blocks,
//                                  simplified)
//     -> compile_formula          (Theorem 2)
//     -> a distributed machine of the class, guaranteed to produce a
//        valid solution on every instance of the scope.
//
// Binary-output problems only (Y = {0, 1}), matching the paper's
// Section 4.3 convention; tuple-output problems can be synthesised
// bitwise.
#pragma once

#include <memory>
#include <optional>

#include "core/decision.hpp"
#include "runtime/state_machine.hpp"

namespace wm {

struct SynthesisResult {
  Formula formula;                              // solves the scope
  std::shared_ptr<const StateMachine> machine;  // compiled (Theorem 2)
  int blocks = 0;
  int delta = 0;
};

/// Synthesises a formula + machine of class `c` solving `problem` on
/// every instance of the scope, or nullopt if none exists at the given
/// round bound. Throws DecisionBudgetError like decide_solvable, and
/// std::invalid_argument if the problem's alphabet is not {0, 1}.
///
/// With opts.pool set, the colouring scan and the per-instance Kripke
/// builds run on the pool; the lowest-witness contract of the scan makes
/// the synthesised formula and machine byte-identical at any thread
/// count (pinned by the differential tests).
std::optional<SynthesisResult> synthesise_solution(
    const Problem& problem, const std::vector<PortNumbering>& scope,
    ProblemClass c, const DecisionOptions& opts = {});

struct MultiSynthesisResult {
  /// value_formulas[i] characterises the nodes that output alphabet[i];
  /// the formulas partition every instance's node set.
  std::vector<Formula> value_formulas;
  std::vector<int> alphabet;
  /// Product of the compiled formula machines (Section 4.3's "tuples of
  /// formulas"), with output = the alphabet value whose formula holds.
  std::shared_ptr<const StateMachine> machine;
  int blocks = 0;
  int delta = 0;
};

/// The multi-valued variant: one formula per alphabet value, realised as
/// a product machine. Works for any finite output alphabet (vertex
/// 3-colouring etc.).
std::optional<MultiSynthesisResult> synthesise_multivalued(
    const Problem& problem, const std::vector<PortNumbering>& scope,
    ProblemClass c, const DecisionOptions& opts = {});

}  // namespace wm
