# Empty dependencies file for wm_compile.
# This may be replaced when dependencies are built.
