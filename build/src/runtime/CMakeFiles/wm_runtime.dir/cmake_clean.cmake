file(REMOVE_RECURSE
  "CMakeFiles/wm_runtime.dir/class_checker.cpp.o"
  "CMakeFiles/wm_runtime.dir/class_checker.cpp.o.d"
  "CMakeFiles/wm_runtime.dir/combinators.cpp.o"
  "CMakeFiles/wm_runtime.dir/combinators.cpp.o.d"
  "CMakeFiles/wm_runtime.dir/engine.cpp.o"
  "CMakeFiles/wm_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/wm_runtime.dir/state_machine.cpp.o"
  "CMakeFiles/wm_runtime.dir/state_machine.cpp.o.d"
  "libwm_runtime.a"
  "libwm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
