#include "obs/log.hpp"

namespace wm::obs {

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

}  // namespace wm::obs

#if !defined(WM_OBS_DISABLED)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace wm::obs {

namespace {

/// Sink + rate-limiter state. Leaked (atexit-time log lines must not
/// race static destruction), mirroring the trace/registry singletons.
struct LogState {
  std::mutex mu;
  std::FILE* sink = nullptr;  // stderr or an owned file
  bool owns_sink = false;
  // Per-second admission window (steady clock).
  std::int64_t window_sec = -1;
  std::uint64_t admitted_in_window = 0;
  std::uint64_t dropped_in_window = 0;
};

std::atomic<bool> g_armed{false};
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<double> g_rate{2000.0};  // lines/sec, 0 = unlimited
std::atomic<double> g_slow_ms{0.0};
std::atomic<std::uint64_t> g_written{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint64_t> g_next_rid{0};

thread_local std::uint64_t t_current_rid = 0;

LogState& state() {
  static LogState* s = new LogState();
  return *s;
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// UTC wallclock with millisecond precision: 2026-08-09T12:34:56.789Z.
void append_timestamp(std::string& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  out += buf;
}

std::int64_t steady_seconds() noexcept {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Writes one complete line under the sink lock, applying the
/// per-second admission window. `line` has no trailing newline.
void write_line(const std::string& line) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink == nullptr) return;
  const double rate = g_rate.load(std::memory_order_relaxed);
  const std::int64_t now_sec = steady_seconds();
  if (now_sec != s.window_sec) {
    if (s.dropped_in_window > 0) {
      // One notice per window rollover so droppage is visible without
      // itself flooding the sink.
      std::string notice = "{\"ts\": \"";
      append_timestamp(notice);
      notice += "\", \"level\": \"warn\", \"event\": \"log_rate_limited\", "
                "\"dropped\": ";
      notice += std::to_string(s.dropped_in_window);
      notice += "}";
      std::fprintf(s.sink, "%s\n", notice.c_str());
      g_written.fetch_add(1, std::memory_order_relaxed);
    }
    s.window_sec = now_sec;
    s.admitted_in_window = 0;
    s.dropped_in_window = 0;
  }
  if (rate > 0 &&
      static_cast<double>(s.admitted_in_window) >= rate) {
    ++s.dropped_in_window;
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++s.admitted_in_window;
  std::fprintf(s.sink, "%s\n", line.c_str());
  std::fflush(s.sink);
  g_written.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// --- Request-id context -----------------------------------------------------

std::uint64_t next_request_id() noexcept {
  return g_next_rid.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t current_request_id() noexcept { return t_current_rid; }

RequestIdScope::RequestIdScope(std::uint64_t rid) noexcept
    : prev_(t_current_rid) {
  t_current_rid = rid;
}

RequestIdScope::~RequestIdScope() { t_current_rid = prev_; }

// --- Sink control -----------------------------------------------------------

void log_open(const std::string& path) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.owns_sink && s.sink != nullptr) std::fclose(s.sink);
  s.sink = nullptr;
  s.owns_sink = false;
  if (path.empty() || path == "stderr" || path == "-") {
    s.sink = stderr;
  } else {
    s.sink = std::fopen(path.c_str(), "w");
    s.owns_sink = s.sink != nullptr;
  }
  s.window_sec = -1;
  s.admitted_in_window = 0;
  s.dropped_in_window = 0;
  g_armed.store(s.sink != nullptr, std::memory_order_relaxed);
}

void log_close() {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  g_armed.store(false, std::memory_order_relaxed);
  if (s.sink != nullptr) std::fflush(s.sink);
  if (s.owns_sink && s.sink != nullptr) std::fclose(s.sink);
  s.sink = nullptr;
  s.owns_sink = false;
}

void log_init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* slow = std::getenv("WM_SLOW_MS");
        slow != nullptr && *slow != '\0') {
      set_slow_threshold_ms(std::atof(slow));
    }
    if (const char* level = std::getenv("WM_LOG_LEVEL");
        level != nullptr && *level != '\0') {
      if (std::strcmp(level, "debug") == 0) log_set_level(LogLevel::kDebug);
      if (std::strcmp(level, "info") == 0) log_set_level(LogLevel::kInfo);
      if (std::strcmp(level, "warn") == 0) log_set_level(LogLevel::kWarn);
      if (std::strcmp(level, "error") == 0) log_set_level(LogLevel::kError);
    }
    if (const char* rate = std::getenv("WM_LOG_RATE");
        rate != nullptr && *rate != '\0') {
      log_set_rate(std::atof(rate));
    }
    const char* path = std::getenv("WM_LOG");
    if (path == nullptr || *path == '\0') return;
    log_open(path);
    std::atexit([] { log_close(); });
  });
}

void log_set_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_set_rate(double lines_per_sec) noexcept {
  g_rate.store(lines_per_sec < 0 ? 0.0 : lines_per_sec,
               std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return g_armed.load(std::memory_order_relaxed) &&
         static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

std::uint64_t log_lines_written() noexcept {
  return g_written.load(std::memory_order_relaxed);
}

std::uint64_t log_lines_dropped() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

double slow_threshold_ms() noexcept {
  return g_slow_ms.load(std::memory_order_relaxed);
}

void set_slow_threshold_ms(double ms) noexcept {
  g_slow_ms.store(ms < 0 ? 0.0 : ms, std::memory_order_relaxed);
}

// --- Events -----------------------------------------------------------------

LogEvent::LogEvent(LogLevel level, std::string_view event) {
  if (!log_enabled(level)) return;
  active_ = true;
  level_ = level;
  body_ = "{\"ts\": \"";
  append_timestamp(body_);
  body_ += "\", \"level\": \"";
  body_ += log_level_name(level);
  body_ += "\", \"event\": \"";
  append_escaped(body_, event);
  body_ += "\"";
  if (const std::uint64_t rid = current_request_id(); rid != 0) {
    body_ += ", \"rid\": ";
    body_ += std::to_string(rid);
  }
}

LogEvent::~LogEvent() {
  if (!active_) return;
  body_ += "}";
  write_line(body_);
}

LogEvent& LogEvent::str(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  body_ += ", \"";
  body_ += key;
  body_ += "\": \"";
  append_escaped(body_, value);
  body_ += "\"";
  return *this;
}

LogEvent& LogEvent::num(std::string_view key, std::int64_t value) {
  if (!active_) return *this;
  body_ += ", \"";
  body_ += key;
  body_ += "\": ";
  body_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::num_u(std::string_view key, std::uint64_t value) {
  if (!active_) return *this;
  body_ += ", \"";
  body_ += key;
  body_ += "\": ";
  body_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::dbl(std::string_view key, double value) {
  if (!active_) return *this;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  body_ += ", \"";
  body_ += key;
  body_ += "\": ";
  body_ += buf;
  return *this;
}

LogEvent& LogEvent::boolean(std::string_view key, bool value) {
  if (!active_) return *this;
  body_ += ", \"";
  body_ += key;
  body_ += "\": ";
  body_ += value ? "true" : "false";
  return *this;
}

}  // namespace wm::obs

#endif  // WM_OBS_DISABLED
