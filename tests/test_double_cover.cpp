#include "graph/double_cover.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace wm {
namespace {

TEST(DoubleCover, StructureOfCycleCover) {
  const Graph g = cycle_graph(5);
  const DoubleCover dc = bipartite_double_cover(g);
  EXPECT_EQ(dc.graph.num_nodes(), 10);
  EXPECT_EQ(dc.graph.num_edges(), 2 * g.num_edges());
  EXPECT_TRUE(bipartition(dc.graph).has_value());
  EXPECT_TRUE(dc.graph.is_regular(2));
  // The double cover of an odd cycle is one big even cycle (connected).
  EXPECT_TRUE(is_connected(dc.graph));
}

TEST(DoubleCover, BipartiteGraphCoverDisconnects) {
  // The double cover of a connected bipartite graph has two components.
  const Graph g = cycle_graph(6);
  const DoubleCover dc = bipartite_double_cover(g);
  EXPECT_EQ(connected_components(dc.graph).size(), 2u);
}

TEST(DoubleCover, CopyIndexing) {
  const Graph g = path_graph(3);
  const DoubleCover dc = bipartite_double_cover(g);
  EXPECT_EQ(dc.copy(1, 1), 1);
  EXPECT_EQ(dc.copy(1, 2), 4);
  EXPECT_EQ(dc.original(4), 1);
  EXPECT_EQ(dc.side[1], 0);
  EXPECT_EQ(dc.side[4], 1);
}

TEST(OneFactorise, RegularBipartiteDecomposes) {
  const Graph g = complete_bipartite(4, 4);
  std::vector<int> side(8, 0);
  for (int v = 4; v < 8; ++v) side[v] = 1;
  const auto factors = one_factorise_bipartite(g, side);
  ASSERT_EQ(factors.size(), 4u);
  // Factors are disjoint perfect matchings covering all edges.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& f : factors) {
    EXPECT_EQ(f.size(), 4u);
    std::set<NodeId> touched;
    for (const Edge& e : f) {
      EXPECT_TRUE(g.has_edge(e.u, e.v));
      EXPECT_TRUE(seen.insert({e.u, e.v}).second) << "edge reused";
      touched.insert(e.u);
      touched.insert(e.v);
    }
    EXPECT_EQ(touched.size(), 8u);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g.num_edges());
}

TEST(OneFactorise, RejectsIrregular) {
  const Graph g = complete_bipartite(2, 3);
  std::vector<int> side(5, 0);
  for (int v = 2; v < 5; ++v) side[v] = 1;
  EXPECT_THROW(one_factorise_bipartite(g, side), std::invalid_argument);
}

/// Checks the Lemma 15 factor structure for a regular graph: each f_i is
/// a permutation of V mapping every node to one of its neighbours, and
/// for every node the k images enumerate its neighbourhood exactly.
void check_factors(const Graph& g) {
  const int k = g.max_degree();
  const auto factors = regular_graph_factors(g);
  ASSERT_EQ(static_cast<int>(factors.size()), k);
  const int n = g.num_nodes();
  for (const auto& f : factors) {
    std::vector<int> hit(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_GE(f[v], 0);
      EXPECT_TRUE(g.has_edge(v, f[v]));
      ++hit[f[v]];
    }
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(hit[v], 1) << "not a permutation";
  }
  for (NodeId v = 0; v < n; ++v) {
    std::set<NodeId> images;
    for (const auto& f : factors) images.insert(f[v]);
    EXPECT_EQ(static_cast<int>(images.size()), k)
        << "images must cover the whole neighbourhood";
  }
}

TEST(RegularFactors, Cycle) { check_factors(cycle_graph(7)); }
TEST(RegularFactors, Petersen) { check_factors(petersen_graph()); }
TEST(RegularFactors, CompleteK5) { check_factors(complete_graph(5)); }
TEST(RegularFactors, Hypercube) { check_factors(hypercube(3)); }

TEST(RegularFactors, Fig9aGraphHasFactorsDespiteNoOneFactor) {
  // Lemma 15 only needs the *double cover* to 1-factorise; the graph
  // itself has no perfect matching.
  check_factors(fig9a_graph());
}

TEST(RegularFactors, RandomRegular) {
  Rng rng(77);
  for (int k : {3, 4, 5}) {
    check_factors(random_regular_graph(12, k, rng));
  }
}

TEST(RegularFactors, RejectsIrregular) {
  EXPECT_THROW(regular_graph_factors(path_graph(3)), std::invalid_argument);
}

}  // namespace
}  // namespace wm
