#include "transform/beeping.hpp"

#include <stdexcept>

namespace wm {

namespace {

bool tagged_with(const Value& s, const char* tag) {
  return s.is_tuple() && s.size() >= 1 && s.at(0).is_str() &&
         s.at(0).as_str() == tag;
}

class BeepAdapter final : public StateMachine {
 public:
  explicit BeepAdapter(std::shared_ptr<const BeepMachine> m) : m_(std::move(m)) {}

  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::set_broadcast();
  }
  Value init(int degree) const override { return m_->init(degree); }
  bool is_stopping(const Value& s) const override { return m_->is_stopping(s); }
  Value message(const Value& s, int) const override {
    return m_->beeps(s) ? Value::integer(1) : Value::unit();
  }
  Value transition(const Value& s, const Value& inbox, int degree) const override {
    return m_->transition(s, inbox.contains(Value::integer(1)), degree);
  }

 private:
  std::shared_ptr<const BeepMachine> m_;
};

// SB -> beeping: each source round expands into |alphabet| beep slots.
// Wrapper state: ("B", slot, x, heard) with heard the Set of alphabet
// values heard so far this source round.
//
// Precondition (documented in the header): the source machine treats
// received sets S and S ∪ {m0} alike — a beeping listener cannot tell
// "some neighbour was silent throughout" (a stopped or m0-sending
// neighbour) from "no such neighbour", so units are stripped from the
// reconstructed set.
class SbToBeeping final : public StateMachine {
 public:
  SbToBeeping(std::shared_ptr<const StateMachine> sb, std::vector<Value> alphabet)
      : sb_(std::move(sb)), alphabet_(std::move(alphabet)) {
    if (sb_->algebraic_class() != AlgebraicClass::set_broadcast()) {
      throw std::invalid_argument(
          "to_beeping_machine: source must be Set∩Broadcast");
    }
    if (alphabet_.empty()) {
      throw std::invalid_argument("to_beeping_machine: empty alphabet");
    }
    for (std::size_t i = 0; i < alphabet_.size(); ++i) {
      if (alphabet_[i].is_unit()) {
        throw std::invalid_argument(
            "to_beeping_machine: m0 must not be in the alphabet");
      }
      for (std::size_t j = i + 1; j < alphabet_.size(); ++j) {
        if (alphabet_[i] == alphabet_[j]) {
          throw std::invalid_argument(
              "to_beeping_machine: alphabet entries must be distinct");
        }
      }
    }
  }

  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::set_broadcast();
  }

  Value init(int degree) const override {
    Value x = sb_->init(degree);
    if (sb_->is_stopping(x)) return x;
    return wrap(0, std::move(x), Value::set({}));
  }

  bool is_stopping(const Value& s) const override {
    return !tagged_with(s, "B") && sb_->is_stopping(s);
  }

  Value message(const Value& s, int) const override {
    const std::size_t slot = static_cast<std::size_t>(s.at(1).as_int());
    const Value& x = s.at(2);
    const Value msg = sb_->message(x, 1);
    // Beep in the slot matching the message; silence in all others (and
    // everywhere if the machine sends m0).
    return msg == alphabet_[slot] ? Value::integer(1) : Value::unit();
  }

  Value transition(const Value& s, const Value& inbox, int degree) const override {
    const std::size_t slot = static_cast<std::size_t>(s.at(1).as_int());
    const Value& x = s.at(2);
    ValueVec heard = s.at(3).items();
    if (inbox.contains(Value::integer(1))) heard.push_back(alphabet_[slot]);
    Value heard_set = Value::set(std::move(heard));
    if (slot + 1 < alphabet_.size()) {
      return wrap(static_cast<int>(slot + 1), x, std::move(heard_set));
    }
    Value x_next = sb_->transition(x, heard_set, degree);
    if (sb_->is_stopping(x_next)) return x_next;
    return wrap(0, std::move(x_next), Value::set({}));
  }

 private:
  static Value wrap(int slot, Value x, Value heard) {
    return Value::tuple({Value::str("B"), Value::integer(slot), std::move(x),
                         std::move(heard)});
  }

  std::shared_ptr<const StateMachine> sb_;
  std::vector<Value> alphabet_;
};

// Beep-wave BFS: sources beep in round 1; every node relays the first
// beep it hears and records the round.
// State: ("W", r, total, first (or -1), beep_pending).
class BeepWave final : public BeepMachine {
 public:
  BeepWave(int source_degree, int rounds)
      : source_degree_(source_degree), rounds_(rounds) {}

  Value init(int degree) const override {
    const bool source = degree == source_degree_;
    return Value::tuple({Value::str("W"), Value::integer(0),
                         Value::integer(rounds_),
                         Value::integer(source ? 0 : -1),
                         Value::integer(source ? 1 : 0)});
  }
  bool is_stopping(const Value& s) const override { return s.is_int(); }
  bool beeps(const Value& s) const override { return s.at(4).as_int() == 1; }
  Value transition(const Value& s, bool heard, int) const override {
    const std::int64_t r = s.at(1).as_int() + 1;
    std::int64_t first = s.at(3).as_int();
    std::int64_t pending = 0;
    if (heard && first < 0) {
      first = r;
      pending = 1;  // relay exactly once
    }
    if (r >= s.at(2).as_int()) {
      return Value::integer(first >= 0 ? first : s.at(2).as_int() + 1);
    }
    return Value::tuple({Value::str("W"), Value::integer(r), s.at(2),
                         Value::integer(first), Value::integer(pending)});
  }

 private:
  int source_degree_;
  int rounds_;
};

}  // namespace

std::shared_ptr<const StateMachine> as_state_machine(
    std::shared_ptr<const BeepMachine> m) {
  return std::make_shared<BeepAdapter>(std::move(m));
}

std::shared_ptr<const StateMachine> to_beeping_machine(
    std::shared_ptr<const StateMachine> sb, std::vector<Value> alphabet) {
  return std::make_shared<SbToBeeping>(std::move(sb), std::move(alphabet));
}

std::shared_ptr<const BeepMachine> beep_wave_machine(int source_degree,
                                                     int rounds) {
  return std::make_shared<BeepWave>(source_degree, rounds);
}

}  // namespace wm
