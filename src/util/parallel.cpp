#include "util/parallel.hpp"

#include <cstdlib>
#include <limits>

#include "obs/counters.hpp"

namespace wm {

int default_thread_count() {
  if (const char* env = std::getenv("WM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  executors_ = threads > 0 ? threads : default_thread_count();
  const int spawned = executors_ - 1;
  queues_.resize(static_cast<std::size_t>(spawned > 0 ? spawned : 1));
  tasks_run_.assign(static_cast<std::size_t>(executors_), 0);
  workers_.reserve(static_cast<std::size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) {
    // Single-executor pool: drain anything submit() deferred.
    while (run_one_task()) {
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Push onto the shortest deque; idle workers steal from the others,
    // so placement only affects contention, not completion.
    std::size_t target = 0;
    for (std::size_t i = 1; i < queues_.size(); ++i) {
      if (queues_[i].tasks.size() < queues_[target].tasks.size()) target = i;
    }
    queues_[target].tasks.push_back(std::move(task));
    const std::uint64_t depth = queues_[target].tasks.size();
    if (depth > queue_high_water_) {
      queue_high_water_ = depth;
      WM_COUNT_MAX(pool.queue_high_water, depth);
    }
  }
  cv_.notify_one();
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Queue& q : queues_) {
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
        ++tasks_run_[0];
        break;
      }
    }
  }
  if (!task) return false;
  WM_COUNT_INFO(pool.tasks);
  task();
  return true;
}

void ThreadPool::worker_loop(int index) {
  const std::size_t self = static_cast<std::size_t>(index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        // Own deque first (front = oldest of our work)...
        if (!queues_[self].tasks.empty()) {
          task = std::move(queues_[self].tasks.front());
          queues_[self].tasks.pop_front();
          ++tasks_run_[self + 1];
          break;
        }
        // ...then steal from the back of the other deques.
        bool stole = false;
        if (queues_.size() > 1) {
          ++steal_attempts_;
          WM_COUNT_INFO(pool.steal_attempts);
        }
        for (std::size_t off = 1; off < queues_.size() && !stole; ++off) {
          Queue& victim = queues_[(self + off) % queues_.size()];
          if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            stole = true;
            ++steal_successes_;
            ++tasks_run_[self + 1];
            WM_COUNT_INFO(pool.steals);
          }
        }
        if (stole) break;
        if (stop_) return;
        ++idle_wakeups_;
        WM_COUNT_INFO(pool.idle_wakeups);
        cv_.wait(lock);
      }
    }
    WM_COUNT_INFO(pool.tasks);
    task();
  }
}

std::uint64_t ThreadPool::chunk_size(std::uint64_t begin, std::uint64_t end,
                                     std::uint64_t requested) const {
  if (requested > 0) return requested;
  const std::uint64_t span = end - begin;
  const std::uint64_t per =
      span / (static_cast<std::uint64_t>(executors_) * 8);
  return per > 0 ? per : 1;
}

void ThreadPool::run_chunked(
    std::uint64_t begin, std::uint64_t end, std::uint64_t chunk,
    const std::function<bool(std::uint64_t, std::uint64_t, int)>& body) {
  if (begin >= end) return;
  const std::uint64_t c = chunk_size(begin, end, chunk);

  struct Job {
    std::atomic<std::uint64_t> cursor;
    std::uint64_t end;
    std::uint64_t chunk;
    std::atomic<bool> cancelled{false};
    std::exception_ptr err;
    std::mutex err_mu;
  };
  Job job;
  job.cursor.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.chunk = c;

  auto drive = [this, &body, &job](int worker) {
    for (;;) {
      if (job.cancelled.load(std::memory_order_relaxed)) return;
      const std::uint64_t lo =
          job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
      if (lo >= job.end) return;
      chunks_claimed_.fetch_add(1, std::memory_order_relaxed);
      WM_COUNT_INFO(pool.chunks);
      const std::uint64_t hi =
          job.end - lo < job.chunk ? job.end : lo + job.chunk;
      try {
        if (!body(lo, hi, worker)) {
          job.cancelled.store(true, std::memory_order_relaxed);
          return;
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(job.err_mu);
          if (!job.err) job.err = std::current_exception();
        }
        job.cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const int spawned = static_cast<int>(workers_.size());
  std::atomic<int> outstanding{spawned};
  for (int w = 0; w < spawned; ++w) {
    submit([&, w] {
      drive(w + 1);  // executor ids: 0 = caller, 1.. = workers
      if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    });
  }
  drive(0);
  if (spawned == 0) {
    // Single-executor pool: also drain deferred submit() tasks so they
    // observe the documented "runs inside the next blocking helper" rule.
    while (run_one_task()) {
    }
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.err) std::rethrow_exception(job.err);
}

void ThreadPool::parallel_for(std::uint64_t begin, std::uint64_t end,
                              const std::function<void(std::uint64_t)>& body,
                              std::uint64_t chunk) {
  run_chunked(begin, end, chunk,
              [&body](std::uint64_t lo, std::uint64_t hi, int) {
                for (std::uint64_t i = lo; i < hi; ++i) body(i);
                return true;
              });
}

void ThreadPool::parallel_chunks(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t, int)>& body,
    std::uint64_t chunk) {
  run_chunked(begin, end, chunk,
              [&body](std::uint64_t lo, std::uint64_t hi, int worker) {
                body(lo, hi, worker);
                return true;
              });
}

void ThreadPool::parallel_chunks_until(
    std::uint64_t begin, std::uint64_t end,
    const std::function<bool(std::uint64_t, std::uint64_t, int)>& body,
    std::uint64_t chunk) {
  run_chunked(begin, end, chunk, body);
}

std::optional<std::uint64_t> ThreadPool::parallel_find_first(
    std::uint64_t begin, std::uint64_t end,
    const std::function<bool(std::uint64_t)>& pred, std::uint64_t chunk) {
  // Empty (or reversed) range: no candidate exists, so "not found" —
  // returned up front so chunk-size arithmetic never sees an empty span.
  if (begin >= end) return std::nullopt;
  constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();
  std::atomic<std::uint64_t> best{kNone};
  run_chunked(begin, end, chunk,
              [&](std::uint64_t lo, std::uint64_t hi, int) {
                // Skip-only cancellation keeps the result deterministic: a
                // chunk is abandoned only when a strictly lower witness is
                // already recorded, so the minimum over recorded hits is
                // the global minimum.
                if (lo >= best.load(std::memory_order_acquire)) return true;
                // The *set of indices* pred runs on above the witness is
                // timing-dependent even though the result is not, so work
                // counters incremented inside pred would break the
                // thread-count-invariance contract. Suppress them here;
                // deterministic callers count from the returned witness.
                obs::SpeculativeScope suppress_work_counters;
                for (std::uint64_t i = lo; i < hi; ++i) {
                  if (i >= best.load(std::memory_order_acquire)) return true;
                  if (pred(i)) {
                    std::uint64_t cur = best.load(std::memory_order_acquire);
                    while (i < cur && !best.compare_exchange_weak(
                                          cur, i, std::memory_order_acq_rel)) {
                    }
                    return true;
                  }
                }
                return true;
              });
  const std::uint64_t found = best.load(std::memory_order_acquire);
  if (found == kNone) return std::nullopt;
  return found;
}

PoolTelemetry ThreadPool::telemetry() const {
  PoolTelemetry t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t.tasks_per_worker = tasks_run_;
    t.steal_attempts = steal_attempts_;
    t.steal_successes = steal_successes_;
    t.idle_wakeups = idle_wakeups_;
    t.queue_high_water = queue_high_water_;
  }
  t.chunks_claimed = chunks_claimed_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace wm
