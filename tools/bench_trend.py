#!/usr/bin/env python3
"""Fold manifest-bearing BENCH_*.json files into a markdown trend table.

bench_diff.py answers "did the work counters regress?"; this tool answers
the complementary question "what did the runs look like over time?". It
reads every BENCH_*.json under the given directories (each directory is
typically one CI run's artefact dump), pulls the provenance manifest and
the headline duration histogram out of each, and emits one markdown table
row per bench json, sorted by (start wallclock, bench name). Nightly CI
uploads the table as an artifact so perf trajectories can be eyeballed
without replaying runs.

Nothing here gates anything: wall-clock and duration percentiles are
environment-dependent by design (that is why bench_diff.py ignores the
"manifest" and "timings" objects). The table is a lab notebook, not a
regression test.

The "headline" column names the timings entry with the largest sample
count — the phase the bench spent the most recorded events in — and the
"p50_µs" / "p99_µs" columns carry that entry's percentiles, so nightly
latency drift is visible next to wall time. Benches predating the
timings field get `-` (the columns are best-effort so old artefacts
keep folding).

Usage:
  bench_trend.py [--output FILE] DIR [DIR ...]
  bench_trend.py --self-test

Exit status: 0 = table written, 1 = self-test misfire, 2 = bad
invocation or no bench jsons found.
"""

import argparse
import glob
import json
import os
import sys
import tempfile


COLUMNS = ["bench", "n", "threads", "wall_ms", "graphs/s",
           "headline", "p50_µs", "p99_µs", "git", "start"]


def load_rows(dirs):
    rows = []
    for d in dirs:
        for path in sorted(glob.glob(os.path.join(d, "BENCH_*.json"))):
            try:
                with open(path, "r", encoding="utf-8") as f:
                    data = json.load(f)
            except (OSError, json.JSONDecodeError) as e:
                raise SystemExit(f"bench_trend: cannot read {path}: {e}")
            rows.append(row_for(data, path))
    return rows


def headline_timing(timings):
    """(name, p50, p99) of the entry with the most recorded samples."""
    if not isinstance(timings, dict) or not timings:
        return ("-", "-", "-")
    best_name, best = max(
        ((k, v) for k, v in timings.items() if isinstance(v, dict)),
        key=lambda kv: (kv[1].get("count", 0), kv[0]),
        default=(None, None))
    if best_name is None:
        return ("-", "-", "-")
    p50 = best.get("p50_us")
    p99 = best.get("p99_us")
    if not isinstance(p50, (int, float)) or not isinstance(p99, (int, float)):
        return (best_name, "-", "-")
    return (best_name, f"{p50:.1f}", f"{p99:.1f}")


def row_for(data, path):
    manifest = data.get("manifest")
    if not isinstance(manifest, dict):
        manifest = {}
    wall = data.get("wall_ms")
    gps = data.get("graphs_per_sec")
    headline, p50, p99 = headline_timing(data.get("timings"))
    return {
        "bench": str(data.get("name", os.path.basename(path))),
        "n": str(data.get("n", "-")),
        "threads": str(data.get("threads", "-")),
        "wall_ms": f"{wall:.1f}" if isinstance(wall, (int, float)) else "-",
        "graphs/s": f"{gps:.0f}" if isinstance(gps, (int, float)) and gps > 0
                    else "-",
        "headline": headline,
        "p50_µs": p50,
        "p99_µs": p99,
        "git": str(manifest.get("git", "-") or "-"),
        "start": str(manifest.get("start", "-") or "-"),
    }


def render_markdown(rows):
    rows = sorted(rows, key=lambda r: (r["start"], r["bench"]))
    widths = {c: max(len(c), *(len(r[c]) for r in rows)) for c in COLUMNS}
    lines = []
    lines.append("| " + " | ".join(c.ljust(widths[c]) for c in COLUMNS) + " |")
    lines.append("|" + "|".join("-" * (widths[c] + 2) for c in COLUMNS) + "|")
    for r in rows:
        lines.append(
            "| " + " | ".join(r[c].ljust(widths[c]) for c in COLUMNS) + " |")
    return "\n".join(lines) + "\n"


def run_trend(args):
    rows = load_rows(args.dirs)
    if not rows:
        raise SystemExit(
            f"bench_trend: no BENCH_*.json under {', '.join(args.dirs)}")
    table = render_markdown(rows)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(table)
        print(f"bench_trend: wrote {len(rows)} row(s) to {args.output}")
    else:
        sys.stdout.write(table)
    return 0


def self_test():
    """Folds synthetic jsons and checks the table's shape; exits non-zero
    on any misfire so CI covers the trend tool alongside the gate."""
    checks = []
    with tempfile.TemporaryDirectory() as tmp:
        run_a = os.path.join(tmp, "run_a")
        run_b = os.path.join(tmp, "run_b")
        os.makedirs(run_a)
        os.makedirs(run_b)
        with open(os.path.join(run_a, "BENCH_quotient.json"), "w") as f:
            json.dump({
                "name": "quotient", "n": 5, "threads": 2, "wall_ms": 123.456,
                "graphs_per_sec": 789.5,
                "metrics": {"work": {"x": 1}, "info": {}},
                "manifest": {"git": "v1-g1111111",
                             "start": "2026-08-01T10:00:00Z"},
                "timings": {
                    "bench.quotient.row": {"count": 40, "p50_us": 512.0,
                                           "p90_us": 900.0, "p99_us": 1023.9,
                                           "max_us": 1500.0},
                    "iso.find": {"count": 7, "p50_us": 1.0, "p90_us": 1.0,
                                 "p99_us": 1.0, "max_us": 1.0}}}, f)
        # An artefact predating manifest/timings must still fold.
        with open(os.path.join(run_b, "BENCH_old.json"), "w") as f:
            json.dump({"name": "old", "n": 4, "threads": 1, "wall_ms": 9.0,
                       "graphs_per_sec": 0.0,
                       "metrics": {"work": {}, "info": {}}}, f)

        class A:
            dirs = [run_a, run_b]
            output = os.path.join(tmp, "trend.md")

        code = run_trend(A())
        table = open(A.output, encoding="utf-8").read()
        lines = table.strip().splitlines()
        checks.append(("exit code 0", code == 0))
        checks.append(("header + rule + 2 rows", len(lines) == 4))
        checks.append(("header names columns",
                       all(c in lines[0] for c in COLUMNS)))
        checks.append(("quotient row present", "quotient" in table))
        checks.append(("wall_ms formatted", "123.5" in table))
        checks.append(("throughput formatted", "790" in table))
        checks.append(("headline is max-count entry",
                       "bench.quotient.row" in table
                       and "iso.find" not in table))
        checks.append(("p50/p99 columns carry the headline percentiles",
                       " 512.0" in table and " 1023.9" in table))
        checks.append(("timings-less row dashes the percentile columns",
                       any(l.count(" - ") >= 3 for l in lines
                           if " old " in l)))
        checks.append(("git + start folded in",
                       "v1-g1111111" in table
                       and "2026-08-01T10:00:00Z" in table))
        checks.append(("manifest-less artefact gets dashes",
                       any(l.count(" - ") >= 2 for l in lines if " old " in l)))
        # Sort key: the manifest-less row ("-" start) sorts before the
        # dated one, so "old" must appear first.
        checks.append(("rows sorted by start",
                       table.index(" old ") < table.index(" quotient ")))

    bad = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"self-test: {'ok  ' if ok else 'FAIL'} {label}")
    if bad:
        print(f"bench_trend --self-test: {len(bad)} check(s) misfired")
        return 1
    print(f"bench_trend --self-test: all {len(checks)} checks behave")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description="Fold BENCH_*.json manifests into a markdown trend table.")
    ap.add_argument("dirs", nargs="*", metavar="DIR",
                    help="directories holding BENCH_*.json files "
                         "(one per run)")
    ap.add_argument("--output", metavar="FILE",
                    help="write the table here instead of stdout")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the folding rules on synthetic data")
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.dirs:
        ap.error("at least one DIR is required (or use --self-test)")
    return run_trend(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
