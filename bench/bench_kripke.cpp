// Regenerates Figure 7 and Table 3: the four Kripke views
// K_{+,+}, K_{-,+}, K_{+,-}, K_{-,-} of one port-numbered graph, with
// the relation contents R(i,j), R(i,*), R(*,j), R(*,*), and the
// correspondence table between modal logic and distributed algorithms.
#include <cstdio>
#include <iostream>

#include "graph/generators.hpp"
#include "logic/kripke.hpp"
#include "port/port_numbering.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const int threads = wm::benchutil::parse_threads(argc, argv);
  const wm::benchutil::Timer wm_total;

  using namespace wm;

  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  Rng rng(42);
  const PortNumbering p = PortNumbering::random(g, rng);
  std::cout << "graph + numbering:\n" << p.to_string() << "\n\n";

  std::printf("=== Figure 7: the accessibility relations ===\n");
  for (const Variant variant : {Variant::PlusPlus, Variant::MinusPlus,
                                Variant::PlusMinus, Variant::MinusMinus}) {
    WM_TIME_SCOPE("bench.kripke.variant");
    const KripkeModel k = kripke_from_graph(p, variant);
    std::printf("\n%s:\n", variant_name(variant).c_str());
    for (const Modality& alpha : k.modalities()) {
      bool any = false;
      std::printf("  R%s:", alpha.to_string().c_str());
      for (int v = 0; v < k.num_states(); ++v) {
        for (int w : k.successors(alpha, v)) {
          std::printf(" %d->%d", v, w);
          any = true;
        }
      }
      std::printf("%s\n", any ? "" : " (empty)");
    }
  }

  std::printf("\n=== Table 3: modal logic <-> distributed algorithms ===\n");
  std::printf("  %-34s %-34s\n", "Modal logic", "Distributed algorithms");
  std::printf("  %-34s %-34s\n", "Kripke model K=(W,(R_a),tau)",
              "input graph G + port numbering p");
  std::printf("  %-34s %-34s\n", "states W", "nodes V");
  std::printf("  %-34s %-34s\n", "relations R_a", "edges E + port numbering");
  std::printf("  %-34s %-34s\n", "valuation tau / props q_i",
              "node degrees (initial state)");
  std::printf("  %-34s %-34s\n", "formula phi", "algorithm A");
  std::printf("  %-34s %-34s\n", "phi true in state v",
              "A outputs 1 at node v");
  std::printf("  %-34s %-34s\n", "modal depth of phi", "running time of A");
  wm::benchutil::report_phase("total", wm_total.ms());
  wm::benchutil::write_bench_json("kripke", 4, threads, wm_total.ms(), 0);
  return 0;
}
