#include "runtime/combinators.hpp"

#include <stdexcept>

namespace wm {

namespace {

bool tagged(const Value& s) {
  return s.is_tuple() && s.size() >= 1 && s.at(0).is_str() &&
         s.at(0).as_str() == "P";
}

class ProductMachine final : public StateMachine {
 public:
  ProductMachine(std::vector<std::shared_ptr<const StateMachine>> components,
                 OutputCombiner combiner)
      : components_(std::move(components)), combiner_(std::move(combiner)) {
    if (components_.empty()) {
      throw std::invalid_argument("product_machine: no components");
    }
    cls_ = components_[0]->algebraic_class();
    for (const auto& c : components_) {
      if (!(c->algebraic_class() == cls_)) {
        throw std::invalid_argument(
            "product_machine: components must share one algebraic class");
      }
    }
    if (!combiner_) {
      combiner_ = [](const ValueVec& outs) { return Value::tuple(outs); };
    }
  }

  AlgebraicClass algebraic_class() const override { return cls_; }

  Value init(int degree) const override {
    ValueVec states;
    states.reserve(components_.size() + 1);
    states.push_back(Value::str("P"));
    bool all_stopped = true;
    for (const auto& c : components_) {
      states.push_back(c->init(degree));
      if (!c->is_stopping(states.back())) all_stopped = false;
    }
    if (all_stopped) {
      return combiner_(ValueVec(states.begin() + 1, states.end()));
    }
    return Value::tuple(std::move(states));
  }

  bool is_stopping(const Value& s) const override { return !tagged(s); }

  Value message(const Value& s, int port) const override {
    ValueVec slots;
    slots.reserve(components_.size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const Value& cs = s.at(i + 1);
      slots.push_back(components_[i]->is_stopping(cs)
                          ? Value::unit()
                          : components_[i]->message(cs, port));
    }
    return Value::tuple(std::move(slots));
  }

  Value transition(const Value& s, const Value& inbox, int degree) const override {
    ValueVec next{Value::str("P")};
    next.reserve(components_.size() + 1);
    bool all_stopped = true;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const Value& cs = s.at(i + 1);
      if (components_[i]->is_stopping(cs)) {
        next.push_back(cs);
        continue;
      }
      // Slot-i projection, re-canonicalised per the shared receive mode.
      ValueVec proj;
      proj.reserve(inbox.size());
      for (const Value& msg : inbox.items()) {
        proj.push_back(msg.is_unit() ? Value::unit() : msg.at(i));
      }
      Value comp_inbox;
      switch (cls_.receive) {
        case ReceiveMode::Vector:
          comp_inbox = Value::tuple(std::move(proj));
          break;
        case ReceiveMode::Multiset:
          comp_inbox = Value::mset(std::move(proj));
          break;
        case ReceiveMode::Set:
          comp_inbox = Value::set(std::move(proj));
          break;
      }
      next.push_back(components_[i]->transition(cs, comp_inbox, degree));
      if (!components_[i]->is_stopping(next.back())) all_stopped = false;
    }
    if (all_stopped) {
      return combiner_(ValueVec(next.begin() + 1, next.end()));
    }
    return Value::tuple(std::move(next));
  }

 private:
  std::vector<std::shared_ptr<const StateMachine>> components_;
  OutputCombiner combiner_;
  AlgebraicClass cls_;
};

}  // namespace

std::shared_ptr<const StateMachine> product_machine(
    std::vector<std::shared_ptr<const StateMachine>> components,
    OutputCombiner combiner) {
  return std::make_shared<ProductMachine>(std::move(components),
                                          std::move(combiner));
}

OutputCombiner binary_combiner() {
  return [](const ValueVec& outs) {
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < outs.size(); ++i) {
      acc |= (outs[i].as_int() & 1) << i;
    }
    return Value::integer(acc);
  };
}

OutputCombiner first_one_combiner() {
  return [](const ValueVec& outs) {
    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (outs[i].is_int() && outs[i].as_int() == 1) {
        return Value::integer(static_cast<std::int64_t>(i) + 1);
      }
    }
    return Value::integer(0);
  };
}

}  // namespace wm
