// Work counters for the observability layer.
//
// A counter is a relaxed atomic with a hierarchical dotted name
// (`engine.rounds`, `pool.steals`), registered on first use in a global
// registry and incremented through the WM_COUNT* macros. Counters come
// in two kinds:
//
//  - *work* counters (WM_COUNT / WM_COUNT_ADD) count deterministic units
//    of work — rounds executed, candidates scanned, refinement
//    iterations. Under the lowest-witness / per-key-minimum contracts of
//    util/parallel.hpp their totals are identical at any thread count,
//    which is what tools/bench_diff.py gates on. To keep that true, the
//    one construct whose *predicate invocation multiset* is
//    timing-dependent even though its result is deterministic —
//    ThreadPool::parallel_find_first — runs its predicate inside a
//    SpeculativeScope, which drops work-counter increments on that
//    thread for the duration. Counters hit from such predicates
//    therefore count 0 from those sites at every thread count instead of
//    a timing-dependent amount.
//
//  - *info* counters (WM_COUNT_INFO / WM_COUNT_INFO_ADD / WM_COUNT_MAX)
//    record scheduling-dependent telemetry — steals, idle wake-ups,
//    queue depths. They ignore SpeculativeScope and are reported
//    separately; regressions gates must not compare them.
//
// Overhead: one relaxed fetch_add plus one thread-local load per
// increment; the registry mutex is taken once per call site (static
// local). Configure with -DWM_OBS=OFF to compile every macro out.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace wm::obs {

enum class CounterKind { kWork, kInfo };

/// True while the calling thread is inside a SpeculativeScope.
bool speculation_suppressed() noexcept;

/// Marks a region whose execution multiset depends on thread timing
/// (e.g. a parallel_find_first predicate): work-counter increments from
/// this thread are dropped until the scope ends. Nestable.
class SpeculativeScope {
 public:
  SpeculativeScope() noexcept;
  ~SpeculativeScope();
  SpeculativeScope(const SpeculativeScope&) = delete;
  SpeculativeScope& operator=(const SpeculativeScope&) = delete;

 private:
  bool prev_;
};

class Counter {
 public:
  explicit Counter(CounterKind kind) : kind_(kind) {}

  void add(std::uint64_t delta = 1) noexcept {
    if (kind_ == CounterKind::kWork && speculation_suppressed()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises the counter to `candidate` if larger (high-water marks).
  void record_max(std::uint64_t candidate) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !value_.compare_exchange_weak(cur, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  CounterKind kind() const noexcept { return kind_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
  const CounterKind kind_;
};

/// Process-wide counter registry. Counter references are stable for the
/// lifetime of the process; lookup is mutex-protected, so call sites
/// cache the reference in a function-local static (the macros do).
class Registry {
 public:
  static Registry& instance();

  /// Returns the counter registered under `name`, creating it with
  /// `kind` on first use. The kind of an existing counter wins; names
  /// are dotted lowercase hierarchies by convention ("engine.rounds").
  Counter& counter(std::string_view name,
                   CounterKind kind = CounterKind::kWork);

  /// Name -> value for every registered counter of `kind`, sorted by
  /// name (std::map order). Zero-valued counters are included once
  /// registered.
  std::map<std::string, std::uint64_t> snapshot(CounterKind kind) const;

  /// Zeroes every registered counter (tests and repeated in-process
  /// measurements; benches run once per process and never need it).
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, Counter*, std::less<>> counters_;
};

inline Registry& registry() { return Registry::instance(); }

/// Serialises the registry's snapshot of `kind` as a JSON object body,
/// names sorted: {"engine.rounds": 42, ...}. Shared by the bench JSON
/// summaries (bench_util.hpp) and the serve stats endpoint.
std::string counters_json(CounterKind kind);

}  // namespace wm::obs

#if !defined(WM_OBS_DISABLED)

#define WM_OBS_COUNT_IMPL(name, delta, kind)                            \
  do {                                                                  \
    static ::wm::obs::Counter& wm_obs_counter_site =                    \
        ::wm::obs::registry().counter(name, kind);                      \
    wm_obs_counter_site.add(static_cast<std::uint64_t>(delta));         \
  } while (0)

/// Deterministic work counter, +1. `name` is an unquoted dotted token:
/// WM_COUNT(engine.rounds).
#define WM_COUNT(name) WM_COUNT_ADD(name, 1)
#define WM_COUNT_ADD(name, delta) \
  WM_OBS_COUNT_IMPL(#name, delta, ::wm::obs::CounterKind::kWork)

/// Scheduling-dependent info counter (pool telemetry and similar).
#define WM_COUNT_INFO(name) WM_COUNT_INFO_ADD(name, 1)
#define WM_COUNT_INFO_ADD(name, delta) \
  WM_OBS_COUNT_IMPL(#name, delta, ::wm::obs::CounterKind::kInfo)

/// Info high-water mark: raises the counter to `v` if larger.
#define WM_COUNT_MAX(name, v)                                           \
  do {                                                                  \
    static ::wm::obs::Counter& wm_obs_counter_site =                    \
        ::wm::obs::registry().counter(#name,                            \
                                      ::wm::obs::CounterKind::kInfo);   \
    wm_obs_counter_site.record_max(static_cast<std::uint64_t>(v));      \
  } while (0)

#else  // WM_OBS_DISABLED

#define WM_COUNT(name) ((void)0)
#define WM_COUNT_ADD(name, delta) ((void)0)
#define WM_COUNT_INFO(name) ((void)0)
#define WM_COUNT_INFO_ADD(name, delta) ((void)0)
#define WM_COUNT_MAX(name, v) ((void)0)

#endif  // WM_OBS_DISABLED
