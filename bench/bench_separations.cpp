// Regenerates the separation evidence of Theorems 11, 13 and 17 at
// scale, plus an automated witness *search* that rediscovers Theorem 13
// style counterexamples among all small graphs (the paper exhibits one
// drawing; we show the phenomenon is machine-findable).
//
// Ported to the task-parallel substrate: independent sweep rows and the
// per-graph Kripke construction run across --threads N workers. Witness
// output (stdout) is byte-identical at any thread count — the witness
// search enumerates modulo refinement with the deterministic parallel
// variant, and all parallel phases write into order-preserving slots.
// Perf lines go to stderr; the summary to BENCH_separations.json.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bisim/bisimulation.hpp"
#include "core/classification.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "problems/catalogue.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

std::size_t g_graphs_streamed = 0;
double g_search_ms = 0;

void sweep_thm11(ThreadPool& pool) {
  std::printf("=== Theorem 11 sweep: leaf-in-star vs VB, k = 2..10 ===\n");
  std::printf("%-4s %-14s %-10s %-12s\n", "k", "numberings", "blocks",
              "leaves bisim");
  const benchutil::Timer timer;
  // One row per k, fully independent (each k seeds its own Rng), so the
  // sweep parallelises over k with rows buffered in k order.
  std::vector<std::string> rows(11);
  pool.parallel_for(2, 11, [&](std::uint64_t ki) {
    WM_TIME_SCOPE("bench.separations.thm11");
    const int k = static_cast<int>(ki);
    SeparationWitness w = thm11_witness(k);
    // Exhaust all numberings for small k, sample for large.
    std::size_t count = 0;
    bool all_bisim = true;
    int blocks = -1;
    if (k <= 3) {
      count = for_each_port_numbering(w.graph, [&](const PortNumbering& p) {
        const KripkeModel m = kripke_from_graph(p, Variant::PlusMinus);
        const Partition part = coarsest_bisimulation(m);
        blocks = part.num_blocks;
        for (int leaf = 2; leaf <= k; ++leaf) {
          if (!part.same_block(1, leaf)) all_bisim = false;
        }
        return true;
      });
    } else {
      Rng rng(static_cast<std::uint64_t>(k));
      for (int trial = 0; trial < 20; ++trial) {
        const PortNumbering p = PortNumbering::random(w.graph, rng);
        const KripkeModel m = kripke_from_graph(p, Variant::PlusMinus);
        const Partition part = coarsest_bisimulation(m);
        blocks = part.num_blocks;
        for (int leaf = 2; leaf <= k; ++leaf) {
          if (!part.same_block(1, leaf)) all_bisim = false;
        }
        ++count;
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-4d %-14zu %-10d %-12s\n", k, count,
                  blocks, all_bisim ? "yes" : "NO");
    rows[ki] = buf;
  }, 1);
  for (int k = 2; k <= 10; ++k) std::fputs(rows[k].c_str(), stdout);
  std::printf("\n");
  benchutil::report_phase("thm11 sweep", timer.ms());
}

void search_thm13_witnesses(ThreadPool& pool) {
  std::printf("=== Theorem 13 witness search over small graph pairs ===\n");
  std::printf("Looking for connected graphs G1, G2 (n <= 6) with K_{-,-}\n");
  std::printf("bisimilar nodes whose odd-odd outputs differ...\n");
  // One pass: build the disjoint union of ALL candidate graphs as a
  // single Kripke model, refine once, and scan blocks for output
  // disagreements — linear instead of quadratic in the candidate count.
  struct Entry {
    int graph_id;
    int n, m;
    int node;
    int output;
  };
  EnumerateOptions opts;
  opts.max_degree = 3;

  // Phase 1: deterministic parallel enumeration modulo refinement — the
  // representative set and order match the sequential variant exactly.
  const benchutil::Timer t_enum;
  std::vector<Graph> candidates;
  for (int n = 3; n <= 6; ++n) {
    enumerate_graphs_modulo_refinement_parallel(n, opts, pool,
                                                [&](const Graph& g) {
                                                  candidates.push_back(g);
                                                  return true;
                                                });
  }
  const double enum_ms = t_enum.ms();
  benchutil::report_phase("thm13 enumerate", enum_ms, candidates.size());

  // Phase 2: per-candidate Kripke models + entries, in parallel into
  // order-preserving slots.
  const benchutil::Timer t_kripke;
  std::vector<KripkeModel> models(candidates.size(), KripkeModel(0, 0));
  std::vector<std::vector<Entry>> entry_slots(candidates.size());
  pool.parallel_for(0, candidates.size(), [&](std::uint64_t i) {
    WM_TIME_SCOPE("bench.separations.thm13_kripke");
    const Graph& g = candidates[i];
    models[i] =
        kripke_from_graph(PortNumbering::identity(g), Variant::MinusMinus, 3);
    for (int v = 0; v < g.num_nodes(); ++v) {
      int odd = 0;
      for (NodeId u : g.neighbours(v)) {
        if (g.degree(u) % 2 == 1) ++odd;
      }
      entry_slots[i].push_back({static_cast<int>(i) + 1, g.num_nodes(),
                                g.num_edges(), v, odd % 2});
    }
  });
  benchutil::report_phase("thm13 kripke models", t_kripke.ms(),
                          candidates.size());

  // Phase 3: sequential fold — state numbering equals the sequential
  // build's, so the reported witnesses are identical too.
  const benchutil::Timer t_join;
  std::vector<Entry> entries;
  KripkeModel joint(0, 0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const int base = joint.num_states();
    joint = KripkeModel::disjoint_union(joint, models[i]);
    for (Entry e : entry_slots[i]) {
      e.node += base;
      entries.push_back(e);
    }
  }
  const int graphs = static_cast<int>(candidates.size());
  std::printf("candidate graphs (mod refinement): %d, joint model states: %d\n",
              graphs, joint.num_states());
  const Partition part = coarsest_bisimulation(joint);
  benchutil::report_phase("thm13 join+bisim", t_join.ms());

  // For each block, report at most one disagreeing pair.
  std::map<int, std::size_t> first_in_block;
  int found = 0;
  for (std::size_t i = 0; i < entries.size() && found < 5; ++i) {
    const int b = part.block[entries[i].node];
    auto [it, fresh] = first_in_block.try_emplace(b, i);
    if (fresh) continue;
    const Entry& a = entries[it->second];
    if (a.output != entries[i].output && a.graph_id != entries[i].graph_id) {
      ++found;
      std::printf("  witness %d: node of G%d(n=%d,m=%d) ~ node of "
                  "G%d(n=%d,m=%d), outputs %d vs %d\n",
                  found, a.graph_id, a.n, a.m, entries[i].graph_id,
                  entries[i].n, entries[i].m, a.output, entries[i].output);
    }
  }
  std::printf("found %d automated witnesses (>=1 proves SB != MB)\n\n", found);
  g_graphs_streamed = candidates.size();
  g_search_ms = enum_ms;
}

void sweep_thm17(ThreadPool& pool) {
  std::printf("=== Theorem 17 sweep: class-G graphs, odd k ===\n");
  std::printf("%-4s %-6s %-12s %-18s %-14s\n", "k", "n", "1-factor",
              "sym-numbering", "K_{+,+} blocks");
  const benchutil::Timer timer;
  const std::vector<int> ks = {3, 5, 7};
  std::vector<std::string> rows(ks.size());
  pool.parallel_for(0, ks.size(), [&](std::uint64_t i) {
    WM_TIME_SCOPE("bench.separations.thm17");
    const int k = ks[i];
    const Graph g = class_g_graph(k);
    const PortNumbering p = PortNumbering::symmetric_regular(g);
    const KripkeModel m = kripke_from_graph(p, Variant::PlusPlus);
    const Partition part = coarsest_bisimulation(m);
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-4d %-6d %-12s %-18s %-14d\n", k,
                  g.num_nodes(), in_class_g(g) ? "none" : "exists",
                  p.is_consistent() ? "consistent(!)" : "inconsistent",
                  part.num_blocks);
    rows[i] = buf;
  }, 1);
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
  std::printf("\n");
  benchutil::report_phase("thm17 sweep", timer.ms());
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  std::printf("##### Separation benches (Theorems 11, 13, 17) #####\n\n");
  {
    const benchutil::Timer timer;
    const std::vector<SeparationWitness> witnesses = {
        thm13_witness(), thm11_witness(3), thm17_witness(3)};
    std::vector<std::string> rows(witnesses.size());
    pool.parallel_for(0, witnesses.size(), [&](std::uint64_t i) {
      WM_TIME_SCOPE("bench.separations.witness");
      const SeparationCheck c = check_separation(witnesses[i]);
      char buf[160];
      std::snprintf(buf, sizeof buf, "%-55s -> %s\n",
                    witnesses[i].name.c_str(),
                    c.holds() ? "VERIFIED" : "FAILED");
      rows[i] = buf;
    }, 1);
    for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
    std::printf("\n");
    benchutil::report_phase("witness verification", timer.ms());
  }
  sweep_thm11(pool);
  search_thm13_witnesses(pool);
  sweep_thm17(pool);

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "separations", 6, pool.num_threads(), wall,
      g_search_ms > 0
          ? 1000.0 * static_cast<double>(g_graphs_streamed) / g_search_ms
          : 0);
  return 0;
}
