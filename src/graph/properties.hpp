// Structural graph predicates used by problem verifiers and experiments.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace wm {

bool is_connected(const Graph& g);

/// Connected components; each component is a sorted list of node ids.
std::vector<std::vector<NodeId>> connected_components(const Graph& g);

/// Two-colouring if bipartite (colour in {0,1} per node), nullopt otherwise.
std::optional<std::vector<int>> bipartition(const Graph& g);

/// Eulerian in the classic sense used by the paper's Section 1.4 example:
/// connected (ignoring isolated nodes) and every degree even.
bool is_eulerian(const Graph& g);

/// True if `s` (0/1 per node) is an independent set.
bool is_independent_set(const Graph& g, const std::vector<int>& s);
/// True if `s` is a *maximal* independent set.
bool is_maximal_independent_set(const Graph& g, const std::vector<int>& s);
/// True if `s` (0/1 per node) is a vertex cover.
bool is_vertex_cover(const Graph& g, const std::vector<int>& s);
/// True if `col` is a proper colouring with colours in [1, k].
bool is_proper_colouring(const Graph& g, const std::vector<int>& col, int k);

/// BFS distances from src (-1 if unreachable).
std::vector<int> bfs_distances(const Graph& g, NodeId src);

}  // namespace wm
