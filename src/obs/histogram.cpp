#include "obs/histogram.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace wm::obs {

namespace {

/// Shard choice: a stable per-thread index, assigned round-robin so
/// concurrent recorders spread across shards. The mapping only affects
/// contention, never the merged multiset.
int shard_for_current_thread() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % Histogram::kShards);
  return shard;
}

}  // namespace

/// Upper bound of bucket i in microseconds: the largest duration the
/// bucket can hold. Deterministic percentile representative.
double bucket_upper_us(int i) noexcept {
  if (i <= 0) return 0.0;
  if (i >= 64) i = 64;
  const double upper_ns = std::ldexp(1.0, i) - 1.0;  // 2^i - 1
  return upper_ns / 1000.0;
}

HistogramSummary summary_from_buckets(const HistogramBuckets& b) noexcept {
  HistogramSummary out;
  const std::uint64_t count = b.total();
  out.count = count;
  if (count == 0) return out;
  if (b.max_ns != 0) {
    out.max_us = static_cast<double>(b.max_ns) / 1000.0;
  } else {
    // Window deltas cannot difference exact maxima; fall back to the
    // upper bound of the highest non-empty bucket.
    for (int i = 63; i >= 0; --i) {
      if (b.counts[static_cast<std::size_t>(i)] != 0) {
        out.max_us = bucket_upper_us(i);
        break;
      }
    }
  }
  const auto percentile = [&](double q) {
    // Rank of the percentile sample in the sorted multiset, 1-based.
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q / 100.0 * static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (int i = 0; i < 64; ++i) {
      seen += b.counts[static_cast<std::size_t>(i)];
      if (seen >= rank) return bucket_upper_us(i);
    }
    return bucket_upper_us(63);
  };
  out.p50_us = percentile(50.0);
  out.p90_us = percentile(90.0);
  out.p99_us = percentile(99.0);
  return out;
}

void Histogram::record(std::uint64_t nanos) noexcept {
  const int bucket = std::bit_width(nanos);  // 0 for 0, else floor(log2)+1
  Shard& shard = shards_[static_cast<std::size_t>(shard_for_current_thread())];
  shard.buckets[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  shard.sum_ns.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (nanos > cur && !max_ns_.compare_exchange_weak(
                            cur, nanos, std::memory_order_relaxed)) {
  }
}

HistogramBuckets Histogram::buckets() const noexcept {
  HistogramBuckets out;
  for (const Shard& s : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      out.counts[static_cast<std::size_t>(i)] +=
          s.buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    out.sum_ns += s.sum_ns.load(std::memory_order_relaxed);
  }
  out.max_ns = max_ns_.load(std::memory_order_relaxed);
  return out;
}

HistogramSummary Histogram::summary() const noexcept {
  return summary_from_buckets(buckets());
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum_ns.store(0, std::memory_order_relaxed);
  }
  max_ns_.store(0, std::memory_order_relaxed);
}

HistogramRegistry& HistogramRegistry::instance() {
  // Leaked singleton, like the counter Registry: summaries are read from
  // atexit-time code paths (bench json writers).
  static HistogramRegistry* r = new HistogramRegistry();
  return *r;
}

Histogram& HistogramRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), new Histogram()).first;
  }
  return *it->second;
}

std::map<std::string, HistogramSummary> HistogramRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSummary> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->summary());
  return out;
}

std::map<std::string, HistogramBuckets> HistogramRegistry::bucket_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramBuckets> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->buckets());
  return out;
}

void HistogramRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : histograms_) h->reset();
}

std::string timings_json() {
  std::string out = "{";
  bool first = true;
  char buf[160];
  for (const auto& [name, s] : histograms().snapshot()) {
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\"%s\": {\"count\": %llu, \"p50_us\": %.3f, "
                  "\"p90_us\": %.3f, \"p99_us\": %.3f, \"max_us\": %.3f}",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.p50_us, s.p90_us, s.p99_us, s.max_us);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace wm::obs
