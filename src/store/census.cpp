#include "store/census.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/manifest.hpp"
#include "obs/progress.hpp"
#include "store/checkpoint.hpp"
#include "util/visitor.hpp"

namespace wm::store {

namespace {

/// Running totals that must survive a kill: seeded from the checkpoint
/// on resume, folded back into the next one.
struct Cumulative {
  std::uint64_t next = 0;
  std::uint64_t classes = 0;
  std::uint64_t admissible = 0;
  std::uint64_t scanned = 0;
  std::uint64_t batches = 0;
  std::uint64_t checkpoints = 0;
};

void commit_checkpoint(const CensusSpace& space, const CensusOptions& opts,
                       CertStore& store, Cumulative& cum,
                       std::uint64_t& crashes_armed, int threads) {
  store.seal();
  store.compact_if_needed();
  Checkpoint cp;
  cp.kind = space.kind;
  cp.space = space.count;
  cp.batch = opts.batch;
  cp.next = cum.next;
  cp.classes = cum.classes;
  cp.admissible = cum.admissible;
  cp.scanned = cum.scanned;
  cp.batches = cum.batches;
  cp.checkpoints = ++cum.checkpoints;
  cp.store_segments = store.segment_refs();
  cp.manifest_json = obs::manifest_json(threads);
  write_checkpoint(opts.checkpoint_path, cp);
  WM_COUNT_INFO(census.checkpoints);
  if (crashes_armed > 0 && --crashes_armed == 0) {
    // Test hook: die after the commit, before the purge — resume must
    // cope with both the purged and the unpurged aftermath.
    ::kill(::getpid(), SIGKILL);
  }
  store.purge_unreferenced();
}

}  // namespace

CensusResult run_census(const CensusSpace& space, const std::string& store_dir,
                        ThreadPool* pool, const CensusOptions& opts) {
  if (!space.classify) {
    throw std::invalid_argument("census space has no classify function");
  }
  if (opts.batch == 0) throw std::invalid_argument("census batch must be > 0");
  if (opts.checkpoint_path.empty()) {
    throw std::invalid_argument("census needs a checkpoint path");
  }
  WM_TIME_SCOPE("census.run");

  Cumulative cum;
  CensusResult result;
  result.kind = space.kind;
  result.space = space.count;

  std::optional<CertStore> store;
  if (opts.resume && std::filesystem::exists(opts.checkpoint_path)) {
    const Checkpoint cp = load_checkpoint(opts.checkpoint_path);
    if (cp.kind != space.kind) {
      throw StoreError(StoreErrorCode::kKindMismatch,
                       opts.checkpoint_path + ": checkpoint is for kind '" +
                           cp.kind + "', census is '" + space.kind + "'");
    }
    if (cp.space != space.count || cp.batch != opts.batch) {
      throw StoreError(
          StoreErrorCode::kCheckpointSkew,
          opts.checkpoint_path +
              ": checkpoint space/batch disagree with this census (space " +
              std::to_string(cp.space) + " vs " + std::to_string(space.count) +
              ", batch " + std::to_string(cp.batch) + " vs " +
              std::to_string(opts.batch) + ")");
    }
    store.emplace(CertStore::open_at(store_dir, space.kind, cp.store_segments,
                                     opts.store));
    cum.next = cp.next;
    cum.classes = cp.classes;
    cum.admissible = cp.admissible;
    cum.scanned = cp.scanned;
    cum.batches = cp.batches;
    cum.checkpoints = cp.checkpoints;
    result.resumed = true;
    WM_COUNT_INFO(census.resumes);
  } else {
    // Cold start: whatever store state exists belongs to no checkpoint —
    // wipe it rather than silently merging two censuses.
    CertStore::wipe(store_dir);
    store.emplace(CertStore::open(store_dir, space.kind, opts.store));
  }

  ParallelVisitor visitor(pool);
  const int threads = visitor.workers();
  std::uint64_t crashes_armed = opts.crash_after;
  const auto start = std::chrono::steady_clock::now();
  const auto over_budget = [&] {
    if (opts.budget_secs <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= opts.budget_secs;
  };

  obs::ProgressTask progress("census." + space.kind,
                             space.count - cum.next);
  std::uint64_t batches_this_run = 0;
  std::uint64_t batches_since_checkpoint = 0;
  bool paused = false;
  while (cum.next < space.count) {
    if (over_budget() ||
        (opts.max_batches > 0 && batches_this_run >= opts.max_batches)) {
      paused = true;
      break;
    }
    const std::uint64_t lo = cum.next;
    const std::uint64_t hi = std::min(space.count, lo + opts.batch);
    std::atomic<std::uint64_t> batch_admissible{0};
    visitor.dedup_stream<std::string>(
        lo, hi,
        [&](std::uint64_t i, auto&& emit) {
          if (std::optional<std::string> cert = space.classify(i)) {
            batch_admissible.fetch_add(1, std::memory_order_relaxed);
            emit(std::move(*cert));
          }
        },
        [&](const std::string& key, std::uint64_t rep) {
          if (store->insert_fresh(key, rep)) ++cum.classes;
          return true;
        });
    cum.admissible += batch_admissible.load(std::memory_order_relaxed);
    cum.scanned += hi - lo;
    cum.next = hi;
    ++cum.batches;
    ++batches_this_run;
    progress.tick(hi - lo);
    WM_COUNT_INFO(census.batches);
    if (++batches_since_checkpoint >= opts.checkpoint_every) {
      commit_checkpoint(space, opts, *store, cum, crashes_armed, threads);
      batches_since_checkpoint = 0;
    }
  }
  // Final commit covers the tail batches (and records completion: a
  // checkpoint with next == space is the done marker).
  if (batches_since_checkpoint > 0 || cum.checkpoints == 0 || paused) {
    commit_checkpoint(space, opts, *store, cum, crashes_armed, threads);
  }

  result.scanned = cum.scanned;
  result.admissible = cum.admissible;
  result.classes = cum.classes;
  result.batches = cum.batches;
  result.checkpoints = cum.checkpoints;
  result.complete = cum.next >= space.count;
  result.store = store->stats();
  return result;
}

}  // namespace wm::store
