#include "logic/kripke.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace wm {
namespace {

TEST(Kripke, BasicModelOps) {
  KripkeModel k(3, 2);
  k.add_edge({0, 0}, 0, 1);
  k.add_edge({0, 0}, 0, 2);
  k.set_prop(1, 0);
  EXPECT_TRUE(k.prop_holds(1, 0));
  EXPECT_FALSE(k.prop_holds(1, 1));
  EXPECT_EQ(k.successors({0, 0}, 0), (std::vector<int>{1, 2}));
  EXPECT_TRUE(k.successors({0, 0}, 1).empty());
  EXPECT_TRUE(k.successors({1, 1}, 0).empty());  // unregistered relation
}

TEST(Kripke, FromGraphMinusMinusIsSymmetricEdgeRelation) {
  const Graph g = path_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);
  // R(*,*) interpreted as a symmetric relation = E.
  EXPECT_EQ(k.successors({0, 0}, 0), (std::vector<int>{1}));
  EXPECT_EQ(k.successors({0, 0}, 1), (std::vector<int>{0, 2}));
  EXPECT_EQ(k.successors({0, 0}, 2), (std::vector<int>{1}));
  // Degree propositions.
  EXPECT_TRUE(k.prop_holds(1, 0));
  EXPECT_TRUE(k.prop_holds(2, 1));
  EXPECT_FALSE(k.prop_holds(1, 1));
}

TEST(Kripke, FromGraphPlusPlusRelationDirections) {
  // Path 0-1-2 with identity numbering: node 1's out-port 1 -> node 0's
  // in-port 1, out-port 2 -> node 2's in-port 1.
  const Graph g = path_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
  // R(i,j) = {(u,v) : p((v,j)) = (u,i)} — u hears v.
  // p((1,1)) = (0,1): so (0,1) in R(1,1).
  EXPECT_EQ(k.successors({1, 1}, 0), (std::vector<int>{1}));
  // p((1,2)) = (2,1): so (2,1) in R(1,2).
  EXPECT_EQ(k.successors({1, 2}, 2), (std::vector<int>{1}));
  // Node 1 hears node 0 via (1,1) and node 2 via (2,1).
  EXPECT_EQ(k.successors({1, 1}, 1), (std::vector<int>{0}));
  EXPECT_EQ(k.successors({2, 1}, 1), (std::vector<int>{2}));
  // Every in-port has exactly one feeding relation entry.
  int total = 0;
  for (const Modality& alpha : k.modalities()) {
    for (int v = 0; v < k.num_states(); ++v) {
      total += static_cast<int>(k.successors(alpha, v).size());
    }
  }
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(Kripke, FromGraphSignatureRegistration) {
  const Graph g = cycle_graph(4);
  const PortNumbering p = PortNumbering::identity(g);
  EXPECT_EQ(kripke_from_graph(p, Variant::PlusPlus).modalities().size(), 4u);
  EXPECT_EQ(kripke_from_graph(p, Variant::MinusPlus).modalities().size(), 2u);
  EXPECT_EQ(kripke_from_graph(p, Variant::PlusMinus).modalities().size(), 2u);
  EXPECT_EQ(kripke_from_graph(p, Variant::MinusMinus).modalities().size(), 1u);
}

TEST(Kripke, FromGraphWithLargerDelta) {
  const Graph g = path_graph(2);
  const PortNumbering p = PortNumbering::identity(g);
  const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus, 3);
  EXPECT_EQ(k.num_props(), 3);
  EXPECT_EQ(k.modalities().size(), 9u);
  EXPECT_THROW(kripke_from_graph(p, Variant::PlusPlus, 0), std::invalid_argument);
}

TEST(Kripke, UnionsInMinusPlusView) {
  // Star: all leaves send via their out-port 1 into distinct centre
  // in-ports; in K_{-,+} the centre's R(*,1)-successors are all leaves.
  const Graph g = star_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const KripkeModel k = kripke_from_graph(p, Variant::MinusPlus);
  EXPECT_EQ(k.successors({0, 1}, 0), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(k.successors({0, 2}, 0).empty());  // leaves have no port 2
}

TEST(Kripke, DisjointUnion) {
  const Graph g = path_graph(2);
  const PortNumbering p = PortNumbering::identity(g);
  const KripkeModel a = kripke_from_graph(p, Variant::MinusMinus);
  const KripkeModel u = KripkeModel::disjoint_union(a, a);
  EXPECT_EQ(u.num_states(), 4);
  EXPECT_EQ(u.successors({0, 0}, 2), (std::vector<int>{3}));
  EXPECT_TRUE(u.prop_holds(1, 2));
}

TEST(Kripke, IsolatedNodesHaveNoProps) {
  Graph g(2);
  g.add_edge(0, 1);
  Graph h(3);
  h.add_edge(0, 1);  // node 2 isolated
  const KripkeModel k =
      kripke_from_graph(PortNumbering::identity(h), Variant::MinusMinus);
  EXPECT_FALSE(k.prop_holds(1, 2));
  EXPECT_TRUE(k.prop_holds(1, 0));
}

}  // namespace
}  // namespace wm
