#include "serve/metrics.hpp"

#include <cstdio>
#include <map>
#include <string_view>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/window.hpp"

namespace wm::serve {

namespace {

void family(std::string& out, std::string_view name, std::string_view help,
            std::string_view type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void sample_u(std::string& out, std::string_view name, std::string_view labels,
              std::uint64_t value) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void sample_d(std::string& out, std::string_view name, std::string_view labels,
              double value) {
  out += name;
  out += labels;
  out += ' ';
  out += fmt(value);
  out += '\n';
}

/// {endpoint="run"} — endpoint names are dotted lowercase tokens, no
/// escaping needed.
std::string ep_label(std::string_view endpoint) {
  return "{endpoint=\"" + std::string(endpoint) + "\"}";
}

/// Emits one counter family whose series are the `prefix`-keyed entries
/// of the work snapshot, endpoint = key suffix. Skipped entirely when no
/// counter matches (a family with no samples is legal but noisy).
void counter_family(std::string& out,
                    const std::map<std::string, std::uint64_t>& work,
                    std::string_view prefix, std::string_view name,
                    std::string_view help) {
  bool have = false;
  for (const auto& [key, value] : work) {
    if (key.rfind(prefix, 0) != 0) continue;
    if (!have) {
      family(out, name, help, "counter");
      have = true;
    }
    sample_u(out, name, ep_label(key.substr(prefix.size())), value);
  }
}

}  // namespace

std::string metrics_exposition(const MemoCache::Stats& cache_stats,
                               double window_secs) {
  const auto work = obs::registry().snapshot(obs::CounterKind::kWork);
  const auto info = obs::registry().snapshot(obs::CounterKind::kInfo);
  const auto timings = obs::histograms().bucket_snapshot();

  std::string out;
  out.reserve(8192);

  // --- Serve request/cache counters -----------------------------------------
  counter_family(out, work, "serve.requests.", "serve_requests_total",
                 "Requests handled, by endpoint.");
  counter_family(out, work, "serve.cache_hits.", "serve_cache_hits_total",
                 "Memo-cache hits, by endpoint.");
  counter_family(out, work, "serve.cache_misses.", "serve_cache_misses_total",
                 "Memo-cache misses (computed), by endpoint.");

  // --- Memo-cache gauges and totals -----------------------------------------
  family(out, "serve_cache_entries", "Live memo-cache entries.", "gauge");
  sample_u(out, "serve_cache_entries", "", cache_stats.entries);
  family(out, "serve_cache_capacity", "Memo-cache entry bound.", "gauge");
  sample_u(out, "serve_cache_capacity", "", cache_stats.capacity);
  family(out, "serve_cache_evictions_total", "Memo-cache evictions.",
         "counter");
  sample_u(out, "serve_cache_evictions_total", "", cache_stats.evictions);
  family(out, "serve_cache_bypasses_total",
         "Memo-cache bypasses (oversized results).", "counter");
  sample_u(out, "serve_cache_bypasses_total", "", cache_stats.bypasses);

  // --- Request latency histograms -------------------------------------------
  // One family, endpoint = histogram name after "serve."; buckets are
  // cumulative as Prometheus requires, le bounds are the log2-ns bucket
  // upper bounds in seconds, emitted up to the highest non-empty bucket.
  {
    bool have = false;
    for (const auto& [name, b] : timings) {
      if (name.rfind("serve.", 0) != 0) continue;
      if (!have) {
        family(out, "serve_request_duration_seconds",
               "Request handling latency (log2-ns buckets).", "histogram");
        have = true;
      }
      const std::string ep = name.substr(6);
      int top = -1;
      for (int i = 0; i < 64; ++i) {
        if (b.counts[static_cast<std::size_t>(i)] != 0) top = i;
      }
      std::uint64_t cum = 0;
      for (int i = 0; i <= top; ++i) {
        cum += b.counts[static_cast<std::size_t>(i)];
        sample_u(out, "serve_request_duration_seconds_bucket",
                 "{endpoint=\"" + ep + "\",le=\"" +
                     fmt(obs::bucket_upper_us(i) / 1e6) + "\"}",
                 cum);
      }
      sample_u(out, "serve_request_duration_seconds_bucket",
               "{endpoint=\"" + ep + "\",le=\"+Inf\"}", b.total());
      sample_d(out, "serve_request_duration_seconds_sum", ep_label(ep),
               static_cast<double>(b.sum_ns) / 1e9);
      sample_u(out, "serve_request_duration_seconds_count", ep_label(ep),
               b.total());
    }
  }

  // --- Raw registries (engine, pool, store telemetry) -----------------------
  if (!work.empty()) {
    family(out, "wm_work_total",
           "Deterministic work counters (thread-count invariant).",
           "counter");
    for (const auto& [key, value] : work) {
      sample_u(out, "wm_work_total", "{counter=\"" + key + "\"}", value);
    }
  }
  if (!info.empty()) {
    family(out, "wm_info_total",
           "Scheduling-dependent info counters (pool and cache telemetry).",
           "counter");
    for (const auto& [key, value] : info) {
      sample_u(out, "wm_info_total", "{counter=\"" + key + "\"}", value);
    }
  }

  // --- Windowed view (info-kind: never gate on these) -----------------------
  const obs::WindowDelta wd = obs::window().delta(window_secs);
  family(out, "wm_window_seconds",
         "Actual span of the rolling window below.", "gauge");
  sample_d(out, "wm_window_seconds", "", wd.valid ? wd.seconds : 0.0);
  if (wd.valid && wd.seconds > 0) {
    bool have = false;
    for (const auto& [key, value] : wd.work) {
      if (key.rfind("serve.requests.", 0) != 0) continue;
      if (!have) {
        family(out, "wm_window_requests_per_second",
               "Windowed request rate, by endpoint.", "gauge");
        have = true;
      }
      sample_d(out, "wm_window_requests_per_second",
               ep_label(key.substr(sizeof("serve.requests.") - 1)),
               static_cast<double>(value) / wd.seconds);
    }
    have = false;
    for (const auto& [name, b] : wd.timings) {
      if (name.rfind("serve.", 0) != 0 || b.total() == 0) continue;
      if (!have) {
        family(out, "wm_window_request_duration_seconds",
               "Windowed latency quantiles (bucket upper bounds).", "gauge");
        have = true;
      }
      const obs::HistogramSummary s = obs::summary_from_buckets(b);
      const std::string ep = name.substr(6);
      sample_d(out, "wm_window_request_duration_seconds",
               "{endpoint=\"" + ep + "\",quantile=\"0.5\"}", s.p50_us / 1e6);
      sample_d(out, "wm_window_request_duration_seconds",
               "{endpoint=\"" + ep + "\",quantile=\"0.9\"}", s.p90_us / 1e6);
      sample_d(out, "wm_window_request_duration_seconds",
               "{endpoint=\"" + ep + "\",quantile=\"0.99\"}", s.p99_us / 1e6);
    }
  }
  return out;
}

}  // namespace wm::serve
