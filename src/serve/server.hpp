// The transport shell around serve::Service: a TCP listener speaking
// newline-delimited JSON, one reply line per request line.
//
// Threading model — deliberately boring:
//
//  - one *accept thread* poll()ing the listen socket alongside a
//    self-pipe (the wakeup channel for request_stop, which is the only
//    async-signal-safe way to interrupt poll from a SIGTERM handler);
//  - one *connection thread* per accepted socket, reading lines and
//    answering them. Request execution is either inline on that thread
//    or submitted to the shared ThreadPool (config.threads > 1) so a
//    slow classify on one connection cannot starve the others. The
//    pool is never used with a single executor — ThreadPool tasks do
//    not run on the submitting thread, so submit-and-wait from the only
//    executor would deadlock.
//
// Shutdown ("drain"): request_stop() closes the listen socket (no new
// connections), then each connection thread finishes the requests whose
// bytes it has already received — complete lines in its buffer plus a
// short linger for a final partially-received line — writes the replies
// and closes. wait() joins everything. In-flight requests are never
// abandoned; this is what the SIGTERM path of tools/wm_serve.cpp and
// the drain test in tests/test_serve_parallel.cpp pin down.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/window.hpp"
#include "serve/protocol.hpp"

namespace wm {
class ThreadPool;
}  // namespace wm

namespace wm::serve {

struct ServerConfig {
  /// Port to bind on 127.0.0.1; 0 = ephemeral (read back via port()).
  int port = 0;
  ServiceConfig service;
};

class Server {
 public:
  /// Binds and listens; throws std::runtime_error on bind failure.
  explicit Server(const ServerConfig& cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves ephemeral port 0 at construction).
  int port() const { return port_; }

  Service& service() { return service_; }

  /// Starts the accept thread. Call once.
  void start();

  /// Initiates drain: stop accepting, let every connection finish the
  /// requests it has already received, then close. Idempotent,
  /// thread-safe, returns without waiting — the SIGTERM path calls this
  /// from a watcher thread. wait() observes completion.
  void request_stop();

  /// Joins the accept thread and every connection thread. Returns once
  /// all replies are written and all sockets are closed.
  void wait();

 private:
  void accept_loop();
  void connection_loop(int fd);

  ServerConfig cfg_;
  Service service_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::unique_ptr<ThreadPool> pool_;  // nullptr when service.threads <= 1
  // 1 Hz window captures while the daemon runs, so stats/metrics always
  // have a fresh baseline to difference against (obs/window.hpp).
  obs::WindowSampler sampler_;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;  // guarded by conn_mu_
};

}  // namespace wm::serve
