// Minimal JSON for the wm_serve wire protocol.
//
// The daemon speaks newline-delimited JSON (one object per line each
// way), so all it needs is a strict RFC 8259 reader into a small value
// tree plus escape helpers for the hand-composed replies. Replies are
// NOT serialised through this tree: the protocol layer writes them
// field-by-field in a fixed order with the repo-wide `", "` / `": "`
// separator style (obs/manifest.cpp), which is what makes the golden
// tests byte-exact. No external dependency, by design — the container
// bakes in nothing beyond the toolchain.
//
// Deliberate strictness (malformed input is an error reply, never UB):
// depth-bounded recursion, no trailing garbage, no NaN/Inf, \uXXXX
// escapes decoded to UTF-8 (surrogate pairs included), integers kept
// exact when they fit a long long.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wm::serve {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  long long as_int() const { return int_; }
  double as_double() const {
    return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Member lookup (first match); nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  static Json null();
  static Json boolean(bool b);
  static Json integer(long long i);
  static Json number(double d);
  static Json string(std::string s);
  static Json array(std::vector<Json> items);
  static Json object(std::vector<std::pair<std::string, Json>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Strict parse of exactly one JSON value (leading/trailing whitespace
/// allowed, nothing else). Throws JsonError with a position-bearing
/// message on malformed input or nesting deeper than `max_depth`.
Json parse_json(std::string_view text, int max_depth = 64);

/// Appends `text` as a quoted JSON string (escapes ", \, control chars).
void append_json_quoted(std::string& out, std::string_view text);

/// `text` as a quoted JSON string.
std::string json_quoted(std::string_view text);

}  // namespace wm::serve
