# Empty dependencies file for wm_port.
# This may be replaced when dependencies are built.
