#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string_view>

#include "obs/trace.hpp"

// Baked in by src/obs/CMakeLists.txt at configure time; the fallbacks
// keep non-CMake compiles (e.g. IDE single-file checks) building.
#if !defined(WM_GIT_DESCRIBE)
#define WM_GIT_DESCRIBE "unknown"
#endif
#if !defined(WM_BUILD_TYPE)
#define WM_BUILD_TYPE "unknown"
#endif
#if !defined(WM_BUILD_FLAGS)
#define WM_BUILD_FLAGS ""
#endif

namespace wm::obs {

namespace {

std::chrono::system_clock::time_point g_start;
std::once_flag g_start_once;

std::string iso8601_utc(std::chrono::system_clock::time_point tp) {
  const std::time_t t = std::chrono::system_clock::to_time_t(tp);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  append_json_escaped(out, text);
  out += '"';
}

/// Env var as a JSON value: quoted string when set, null when not.
void append_env_json(std::string& out, const char* var) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') {
    out += "null";
  } else {
    append_json_string(out, v);
  }
}

bool obs_compiled_in() {
#if defined(WM_OBS_DISABLED)
  return false;
#else
  return true;
#endif
}

}  // namespace

void mark_process_start() {
  std::call_once(g_start_once, [] { g_start = std::chrono::system_clock::now(); });
}

const char* build_git_describe() { return WM_GIT_DESCRIBE; }

std::string manifest_json(int threads) {
  mark_process_start();  // fallback: start == first manifest touch
  std::string out = "{\"git\": ";
  append_json_string(out, WM_GIT_DESCRIBE);
  out += ", \"compiler\": ";
  append_json_string(out, __VERSION__);
  out += ", \"build_type\": ";
  append_json_string(out, WM_BUILD_TYPE);
  out += ", \"flags\": ";
  append_json_string(out, WM_BUILD_FLAGS);
  out += ", \"obs\": ";
  out += obs_compiled_in() ? "true" : "false";
  out += ", \"trace\": ";
  out += trace_enabled() ? "true" : "false";
  out += ", \"threads\": ";
  out += std::to_string(threads);
  out += ", \"seed\": ";
  append_env_json(out, "WM_SEED");
  out += ", \"progress\": ";
  append_env_json(out, "WM_PROGRESS");
  out += ", \"start\": ";
  append_json_string(out, iso8601_utc(g_start));
  out += ", \"end\": ";
  append_json_string(out, iso8601_utc(std::chrono::system_clock::now()));
  out += "}";
  return out;
}

std::string manifest_text(int threads) {
  mark_process_start();
  const char* seed = std::getenv("WM_SEED");
  const char* progress = std::getenv("WM_PROGRESS");
  std::string out;
  out += "git: ";
  out += WM_GIT_DESCRIBE;
  out += "\ncompiler: ";
  out += __VERSION__;
  out += "\nbuild: ";
  out += WM_BUILD_TYPE;
  out += " [";
  out += WM_BUILD_FLAGS;
  out += "]\nobs: ";
  out += obs_compiled_in() ? "on" : "off";
  out += ", trace: ";
  out += trace_enabled() ? "on" : "off";
  out += ", threads: ";
  out += std::to_string(threads);
  out += "\nseed: ";
  out += (seed && *seed) ? seed : "(unset)";
  out += ", progress: ";
  out += (progress && *progress) ? progress : "(unset)";
  out += "\nstart: ";
  out += iso8601_utc(g_start);
  return out;
}

}  // namespace wm::obs
