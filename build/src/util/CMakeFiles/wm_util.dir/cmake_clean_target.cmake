file(REMOVE_RECURSE
  "libwm_util.a"
)
