#include "algorithms/machines.hpp"

#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

/// Runs machine on (g, p) and checks the problem verifier accepts.
void expect_solves(const StateMachine& m, const Problem& problem,
                   const Graph& g, const PortNumbering& p) {
  const auto r = execute(m, p);
  ASSERT_TRUE(r.stopped) << problem.name();
  EXPECT_TRUE(problem.valid(g, r.outputs_as_ints()))
      << problem.name() << " on\n"
      << g.to_string();
}

TEST(LeafPicker, SolvesLeafInStarOnAllStarsAndNumberings) {
  const auto m = leaf_picker_machine();
  const auto problem = leaf_in_star_problem();
  for (int k = 2; k <= 4; ++k) {
    const Graph g = star_graph(k);
    for_each_port_numbering(g, [&](const PortNumbering& p) {
      expect_solves(*m, *problem, g, p);
      return true;
    });
  }
}

TEST(LeafPicker, RunsInOneRound) {
  const auto r = execute(*leaf_picker_machine(),
                         PortNumbering::identity(star_graph(3)));
  EXPECT_EQ(r.rounds, 1);
}

TEST(LeafPicker, HarmlessOnArbitraryGraphs) {
  // Problem unconstrained off stars, but the machine must still stop.
  const auto m = leaf_picker_machine();
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 4, 4, rng);
    const auto r = execute(*m, PortNumbering::random(g, rng));
    EXPECT_TRUE(r.stopped);
  }
}

TEST(OddOddMachine, SolvesOnAllSmallGraphs) {
  const auto m = odd_odd_machine();
  const auto problem = odd_odd_problem();
  EnumerateOptions opts;
  opts.connected_only = false;
  Rng rng(3);
  enumerate_graphs(5, opts, [&](const Graph& g) {
    expect_solves(*m, *problem, g, PortNumbering::identity(g));
    expect_solves(*m, *problem, g, PortNumbering::random(g, rng));
    return true;
  });
}

TEST(OddOddMachine, OneRound) {
  const auto r = execute(*odd_odd_machine(),
                         PortNumbering::identity(complete_graph(4)));
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{1, 1, 1, 1}));
}

TEST(LocalTypeMachine, BreaksSymmetryUnderConsistentNumberings) {
  // Theorem 17's VVc(1) algorithm: on class-G graphs with consistent p,
  // the output is non-constant.
  const Graph g = fig9a_graph();
  const auto m = local_type_maximum_machine(3);
  const auto problem = symmetry_break_problem();
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const PortNumbering p = PortNumbering::random_consistent(g, rng);
    const auto r = execute(*m, p);
    ASSERT_TRUE(r.stopped);
    EXPECT_EQ(r.rounds, 2);
    EXPECT_TRUE(problem->valid(g, r.outputs_as_ints()));
  }
}

TEST(LocalTypeMachine, CannotBreakSymmetryUnderTheSymmetricNumbering) {
  // Under the Lemma 15 inconsistent numbering every node computes the
  // same local type, so the output is constant — exactly why the
  // algorithm only works "assuming consistency".
  const Graph g = fig9a_graph();
  const PortNumbering p = PortNumbering::symmetric_regular(g);
  const auto r = execute(*local_type_maximum_machine(3), p);
  ASSERT_TRUE(r.stopped);
  const auto out = r.outputs_as_ints();
  for (int v : out) EXPECT_EQ(v, out[0]);
}

TEST(IsolatedDetector, DetectsExactlyIsolatedNodes) {
  const auto m = isolated_detector_machine();
  const auto problem = isolated_node_problem();
  EnumerateOptions opts;
  opts.connected_only = false;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    expect_solves(*m, *problem, g, PortNumbering::identity(g));
    return true;
  });
}

TEST(IsolatedDetector, IsDegreeOblivious) {
  // SBo: init must not depend on the degree.
  const auto m = isolated_detector_machine();
  EXPECT_EQ(m->init(0), m->init(3));
}

TEST(TimeZeroMachines, DegreeParityAndEvenDegree) {
  const Graph g = star_graph(3);
  const auto p = PortNumbering::identity(g);
  const auto r1 = execute(*degree_parity_machine(), p);
  EXPECT_EQ(r1.rounds, 0);
  EXPECT_TRUE(degree_parity_problem()->valid(g, r1.outputs_as_ints()));
  // Star: degrees (3, 1, 1, 1) — none even.
  const auto r2 = execute(*even_degree_machine(), p);
  EXPECT_EQ(r2.outputs_as_ints(), (std::vector<int>{0, 0, 0, 0}));
  // Path: degrees (1, 2, 1).
  const auto r3 = execute(*even_degree_machine(),
                          PortNumbering::identity(path_graph(3)));
  EXPECT_EQ(r3.outputs_as_ints(), (std::vector<int>{0, 1, 0}));
}

TEST(EvenDegreeMachine, AcceptsEverywhereIffAllDegreesEven) {
  // On Eulerian graphs all nodes accept; on graphs with an odd-degree
  // node someone rejects. (This solves the Eulerian decision problem on
  // *connected* graphs; connectivity itself is undecidable anonymously —
  // see test_separations.)
  const auto m = even_degree_machine();
  const auto problem = eulerian_decision_problem();
  EnumerateOptions opts;
  opts.connected_only = true;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    expect_solves(*m, *problem, g, PortNumbering::identity(g));
    return true;
  });
}

class VertexCoverParam : public ::testing::TestWithParam<int> {};

TEST_P(VertexCoverParam, PackingMachineGives2Approximation) {
  const auto m = vertex_cover_packing_machine();
  const auto problem = approx_vertex_cover_problem();
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_graph(10, 4, 5, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto r = execute(*m, p);
    ASSERT_TRUE(r.stopped);
    EXPECT_TRUE(problem->valid(g, r.outputs_as_ints())) << g.to_string();
    // Never more than 2(n+1) rounds.
    EXPECT_LE(r.rounds, 2 * (g.num_nodes() + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexCoverParam, ::testing::Values(1, 2, 3, 4));

TEST(VertexCoverPacking, StructuredInstances) {
  const auto m = vertex_cover_packing_machine();
  const auto problem = approx_vertex_cover_problem();
  for (const Graph& g : {star_graph(5), path_graph(7), cycle_graph(6),
                         complete_graph(5), petersen_graph(),
                         complete_bipartite(3, 4), grid_graph(3, 3)}) {
    expect_solves(*m, *problem, g, PortNumbering::identity(g));
  }
}

TEST(VertexCoverPacking, PathConvergesFast) {
  // On paths the interior saturates in phase 1 and endpoints retire in
  // phase 2: at most 2 phases of 2 rounds plus the final transitions.
  const auto r = execute(*vertex_cover_packing_machine(),
                         PortNumbering::identity(path_graph(10)));
  EXPECT_TRUE(r.stopped);
  EXPECT_LE(r.rounds, 6);
}

TEST(VertexCoverPacking, IsolatedNodesRetireImmediately) {
  Graph g(3);
  g.add_edge(0, 1);  // node 2 isolated
  const auto r = execute(*vertex_cover_packing_machine(),
                         PortNumbering::identity(g));
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.final_states[2], Value::integer(0));
}

TEST(PortOneParity, IsGenuinelyVb) {
  // Broadcast-invariant (sends one message) but NOT multiset-invariant
  // (reads in-port 1) — a machine witnessing that VB sits between MB and
  // VV in information terms.
  const auto m = port_one_parity_machine();
  EXPECT_EQ(m->algebraic_class(), AlgebraicClass::vector_broadcast());
  // Path 0-1-2-3 with identity ports: each node's in-port 1 hears its
  // smallest neighbour; only node 1 hears an odd-degree node (node 0).
  const auto r = execute(*m, PortNumbering::identity(path_graph(4)));
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 1, 0, 0}));
}

TEST(VertexCoverPacking, VbAndMbVariantsAgree) {
  const auto vb = vertex_cover_packing_vb_machine();
  const auto mb = vertex_cover_packing_machine();
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_connected_graph(9, 3, 4, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    EXPECT_EQ(execute(*vb, p).final_states, execute(*mb, p).final_states);
  }
}

}  // namespace
}  // namespace wm
